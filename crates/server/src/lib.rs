//! # rsmr-server — a deployable replica of the reconfigurable machine
//!
//! This crate assembles the *unmodified* protocol actors — the same
//! [`rsmr_core::RsmrNode`] / [`rsmr_core::harness::World`] /
//! [`simnet::MultiGroup`] types every simulated experiment runs — onto
//! real backends via [`simnet::NodeRuntime`]: TCP transport with
//! length-prefixed frames and reconnect, a wall clock, and a file-backed
//! [`simnet::StableStore`] that survives crashes.
//!
//! The library exposes the assembly ([`build_actor`]) and the serve loop
//! ([`serve`]) so integration tests and the load generator can host
//! replicas in-process; the `rsmr-server` binary is a thin CLI wrapper.
//! See `OPERATIONS.md` at the repository root for the operator's guide.

use std::collections::{BTreeSet, HashMap};
use std::io::{self, Write as _};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use kvstore::KvStore;
use rsmr_core::harness::World;
use rsmr_core::{RsmrNode, RsmrTunables};
use simnet::observe::shared;
use simnet::{
    Counter, FileStorage, Gauge, GroupId, HistogramHandle, MemStorage, MultiGroup, NodeId,
    NodeRuntime, Registry, RuntimeConfig, Spans, StableStore, StorageBackend, TcpConfig,
    TcpTransport, WallClock,
};

pub mod config;
pub mod http;
pub use config::ServerConfig;
pub use http::HttpServer;

use consensus::StaticConfig;

/// The actor a replica hosts: every group's reconfigurable node,
/// multiplexed over one runtime — identical to the sharded simulation
/// worlds.
pub type ReplicaActor = MultiGroup<World<KvStore>>;

/// What [`serve`] reports after a clean shutdown.
#[derive(Clone, Debug)]
pub struct ServerSummary {
    /// This replica's id.
    pub node: u64,
    /// Groups rebuilt from the storage dir (vs. started fresh).
    pub recovered_groups: usize,
    /// Per-group `(group, anchored epoch)` at shutdown; `None` when the
    /// group never anchored (e.g. a joiner that was never activated).
    pub anchored_epochs: Vec<(u32, Option<u64>)>,
    /// Application operations applied across all groups.
    pub ops_applied: u64,
    /// Messages sent / delivered by the runtime.
    pub net_sent: u64,
    /// Messages delivered to this replica.
    pub net_delivered: u64,
}

/// Builds the replica's actor from its (possibly recovered) stable store.
///
/// Per group: a node with persisted state recovers from it
/// ([`RsmrNode::recover`]); otherwise a member of the genesis
/// configuration boots as a genesis replica and anyone else boots
/// *joining* — it waits for an `Activate` naming it a member. Returns the
/// actor and how many groups were recovered.
pub fn build_actor(cfg: &ServerConfig, store: &StableStore) -> (ReplicaActor, usize) {
    let me = NodeId(cfg.node_id);
    let mut tun = RsmrTunables::default();
    tun.paxos.max_batch = cfg.max_batch as usize;
    tun.paxos.max_delay = simnet::SimDuration::from_millis(cfg.max_delay_ms);
    tun.paxos.window = cfg.window as usize;
    let initial: Vec<NodeId> = cfg.initial_members.iter().map(|&n| NodeId(n)).collect();
    let persisted = ReplicaActor::persisted_groups(store);
    let mut actor = ReplicaActor::sealed();
    let mut recovered = 0;
    for g in 0..cfg.groups {
        let gid = GroupId(g);
        let from_disk = persisted.contains(&gid).then(|| {
            let sub = store.subtree(&gid.scope());
            RsmrNode::recover(me, tun.clone(), &sub)
        });
        let node = match from_disk.flatten() {
            Some(node) => {
                recovered += 1;
                node
            }
            None if initial.contains(&me) => {
                RsmrNode::genesis(me, StaticConfig::new(initial.clone()), tun.clone())
            }
            None => RsmrNode::joining(me, tun.clone()),
        };
        actor.insert(gid, World::server(node));
    }
    (actor, recovered)
}

fn io_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, msg)
}

/// Runs one replica until `stop` is set or the configured
/// `run_for_secs` deadline passes, then flushes storage and reports.
///
/// This is the whole server: load the store, rebuild the actor, bind the
/// transport, and pump the runtime. The binary calls it with a
/// never-set stop flag; tests set the flag to orchestrate shutdown.
pub fn serve(cfg: &ServerConfig, stop: &AtomicBool) -> io::Result<ServerSummary> {
    cfg.validate().map_err(io_err)?;
    let me = NodeId(cfg.node_id);
    let listen = cfg.listen_addr().map_err(io_err)?;
    let metrics_listen = cfg.metrics_listen_addr().map_err(io_err)?;
    let peers = cfg.peer_addrs().map_err(io_err)?;
    let registry = Registry::new();

    let mut backend: Box<dyn StorageBackend> = match &cfg.storage_dir {
        Some(dir) => Box::new(
            FileStorage::open(dir, cfg.fsync)?
                .with_sync_window(Duration::from_millis(cfg.fsync_window_ms))
                .with_telemetry(&registry),
        ),
        None => Box::new(MemStorage),
    };
    let store = backend.load()?;
    let (actor, recovered_groups) = build_actor(cfg, &store);

    let mut tcp = TcpConfig::new(me).telemetry(registry.clone());
    if let Some(addr) = listen {
        tcp = tcp.listen(addr);
    }
    for (id, addr) in peers {
        tcp = tcp.peer(NodeId(id), addr);
    }
    for &n in &cfg.corrupt_frames {
        tcp = tcp.corrupt_frame(n);
    }
    let transport = TcpTransport::bind(tcp)?;

    let mut rt = NodeRuntime::new(
        me,
        actor,
        WallClock::new(),
        transport,
        backend,
        store,
        RuntimeConfig {
            seed: cfg.seed,
            ..RuntimeConfig::default()
        },
    );
    let spans = shared(Spans::new());
    rt.add_observer(spans.clone());

    // Live telemetry: the serve loop refreshes the registry and a
    // pre-rendered status JSON; the HTTP thread only reads snapshots.
    let mut pump = TelemetryPump::new(registry.clone());
    let _http = match metrics_listen {
        Some(addr) => Some(
            HttpServer::bind(addr, registry.clone(), Arc::clone(&pump.status))
                .map_err(|e| io::Error::new(e.kind(), format!("metrics endpoint: {e}")))?,
        ),
        None => None,
    };
    let mut events_file = match &cfg.events_out {
        Some(path) => Some(std::fs::File::create(path)?),
        None => None,
    };

    let started = Instant::now();
    let deadline = cfg
        .run_for_secs
        .map(|s| Instant::now() + Duration::from_secs(s));
    let stats_every =
        (cfg.stats_interval_secs > 0).then(|| Duration::from_secs(cfg.stats_interval_secs));
    let mut next_refresh = Instant::now();
    let mut next_stats = stats_every.map(|d| started + d);
    while !stop.load(Ordering::SeqCst) {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        rt.run_for(Duration::from_millis(50));
        if Instant::now() >= next_refresh {
            pump.refresh(cfg.node_id, &rt, &spans.borrow());
            next_refresh = Instant::now() + REFRESH_INTERVAL;
        }
        if let (Some(every), Some(at)) = (stats_every, next_stats) {
            if Instant::now() >= at {
                if let Some(f) = &mut events_file {
                    let _ = f.write_all(stats_line(cfg.node_id, started, &rt).as_bytes());
                }
                next_stats = Some(at + every);
            }
        }
    }

    pump.refresh(cfg.node_id, &rt, &spans.borrow());
    let summary = summarize(cfg, recovered_groups, &rt);
    if let Some(f) = &mut events_file {
        let spans = spans.borrow();
        f.write_all(events_jsonl(&summary, &spans).as_bytes())?;
    }
    rt.shutdown();
    Ok(summary)
}

/// How often the serve loop pushes actor-thread metrics and status into
/// the scrape-side registry. Publishing clones the actor's histogram
/// records, so this trades staleness against copying.
const REFRESH_INTERVAL: Duration = Duration::from_millis(250);

/// Pushes the replica's live state into the registry: the actor thread's
/// [`simnet::Metrics`] batch (so `paxos.*` / `rsmr.*` series appear next
/// to the atomic `storage.*` / `net.*` handles), a per-group
/// `rsmr.epoch` gauge, per-phase reconfiguration-span histograms, and
/// the pre-rendered `/status` JSON.
struct TelemetryPump {
    registry: Registry,
    status: Arc<Mutex<String>>,
    epoch_gauges: HashMap<u32, Gauge>,
    seal_us: HistogramHandle,
    transfer_us: HistogramHandle,
    handoff_us: HistogramHandle,
    transfer_bytes: Counter,
    /// `(epoch, phase)` pairs already recorded — spans fill in phase by
    /// phase, and each phase must count exactly once.
    recorded: BTreeSet<(u64, u8)>,
}

impl TelemetryPump {
    fn new(registry: Registry) -> Self {
        TelemetryPump {
            status: Arc::new(Mutex::new("{}".to_owned())),
            epoch_gauges: HashMap::new(),
            seal_us: registry.histogram("reconfig.seal_latency_us"),
            transfer_us: registry.histogram("reconfig.transfer_time_us"),
            handoff_us: registry.histogram("reconfig.handoff_gap_us"),
            transfer_bytes: registry.counter("reconfig.transfer_bytes"),
            recorded: BTreeSet::new(),
            registry,
        }
    }

    fn refresh(&mut self, node: u64, rt: &NodeRuntime<ReplicaActor>, spans: &Spans) {
        self.registry.publish("actor", rt.metrics().export());
        for b in spans.epoch_breakdowns() {
            let mut phase = |id: u8, value: Option<simnet::SimDuration>, h: &HistogramHandle| {
                if let Some(d) = value {
                    if self.recorded.insert((b.epoch, id)) {
                        h.record(d.as_micros());
                        if id == 1 {
                            self.transfer_bytes.add(b.transfer_bytes);
                        }
                    }
                }
            };
            phase(0, b.seal_latency, &self.seal_us);
            phase(1, b.transfer_time, &self.transfer_us);
            phase(2, b.handoff_gap, &self.handoff_us);
        }

        use std::fmt::Write as _;
        let mut json = String::with_capacity(256);
        let _ = write!(json, "{{\"node\":{node},\"groups\":[");
        let mut first = true;
        for (gid, world) in rt.actor().entries() {
            let Some(n) = world.as_server() else { continue };
            if !std::mem::take(&mut first) {
                json.push(',');
            }
            let anchored = n.anchored_epoch().map(|e| e.0);
            let epoch = |e: Option<u64>| match e {
                Some(e) => e.to_string(),
                None => "null".to_owned(),
            };
            let role = if n.is_active_leader() {
                "leader"
            } else if anchored.is_some() {
                "follower"
            } else {
                "joining"
            };
            let _ = write!(
                json,
                "{{\"group\":{},\"epoch\":{},\"active_epoch\":{},\"role\":\"{role}\",\"members\":[",
                gid.0,
                epoch(anchored),
                epoch(n.active_epoch().map(|e| e.0)),
            );
            if let Some(chain) = n.chain() {
                for (i, m) in chain.latest_config().members().iter().enumerate() {
                    if i > 0 {
                        json.push(',');
                    }
                    let _ = write!(json, "{}", m.0);
                }
            }
            json.push_str("]}");
            if let Some(e) = anchored {
                self.epoch_gauges
                    .entry(gid.0)
                    .or_insert_with(|| {
                        self.registry
                            .gauge(&format!("rsmr.epoch{{group=\"{}\"}}", gid.0))
                    })
                    .set(e);
            }
        }
        json.push_str("]}");
        *self.status.lock().unwrap_or_else(|e| e.into_inner()) = json;
    }
}

/// One periodic `server_stats` JSONL line: liveness counters an operator
/// (or the CI smoke job) can tail without scraping.
fn stats_line(node: u64, started: Instant, rt: &NodeRuntime<ReplicaActor>) -> String {
    let mut ops = 0;
    for (_, world) in rt.actor().entries() {
        if let Some(n) = world.as_server() {
            ops += n.state_machine().ops_applied();
        }
    }
    format!(
        "{{\"event\":\"server_stats\",\"node\":{},\"uptime_ms\":{},\"ops_applied\":{},\"net_sent\":{},\"net_delivered\":{}}}\n",
        node,
        started.elapsed().as_millis(),
        ops,
        rt.metrics().counter("net.sent"),
        rt.metrics().counter("net.delivered"),
    )
}

fn summarize(
    cfg: &ServerConfig,
    recovered_groups: usize,
    rt: &NodeRuntime<ReplicaActor>,
) -> ServerSummary {
    let mut anchored = Vec::new();
    let mut ops = 0;
    for (gid, world) in rt.actor().entries() {
        if let Some(node) = world.as_server() {
            anchored.push((gid.0, node.anchored_epoch().map(|e| e.0)));
            ops += node.state_machine().ops_applied();
        }
    }
    ServerSummary {
        node: cfg.node_id,
        recovered_groups,
        anchored_epochs: anchored,
        ops_applied: ops,
        net_sent: rt.metrics().counter("net.sent"),
        net_delivered: rt.metrics().counter("net.delivered"),
    }
}

/// Renders the shutdown event file: one summary line, one line per
/// observed reconfiguration span, one command-latency line. Values are
/// microseconds; absent phases are `null`.
fn events_jsonl(summary: &ServerSummary, spans: &Spans) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"event\":\"server_summary\",\"node\":{},\"recovered_groups\":{},\"ops_applied\":{},\"net_sent\":{},\"net_delivered\":{}}}",
        summary.node, summary.recovered_groups, summary.ops_applied, summary.net_sent,
        summary.net_delivered
    );
    let opt = |d: Option<simnet::SimDuration>| match d {
        Some(d) => d.as_micros().to_string(),
        None => "null".to_owned(),
    };
    for b in spans.epoch_breakdowns() {
        let _ = writeln!(
            out,
            "{{\"event\":\"reconfig_span\",\"node\":{},\"epoch\":{},\"seal_latency_us\":{},\"transfer_time_us\":{},\"transfer_bytes\":{},\"handoff_gap_us\":{}}}",
            summary.node,
            b.epoch,
            opt(b.seal_latency),
            opt(b.transfer_time),
            b.transfer_bytes,
            opt(b.handoff_gap)
        );
    }
    let _ = writeln!(
        out,
        "{{\"event\":\"command_latency\",\"node\":{},\"completed\":{},\"mean_us\":{}}}",
        summary.node,
        spans.commands_completed(),
        spans.mean_command_latency_us()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> ServerConfig {
        ServerConfig {
            node_id: 0,
            initial_members: vec![0, 1, 2],
            groups: 2,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn genesis_members_and_joiners_assemble_differently() {
        let store = StableStore::new();
        let (actor, recovered) = build_actor(&base_cfg(), &store);
        assert_eq!(recovered, 0);
        let groups: Vec<_> = actor.entries().map(|(g, _)| g).collect();
        assert_eq!(groups, vec![GroupId(0), GroupId(1)]);
        for (_, world) in actor.entries() {
            let node = world.as_server().expect("server world");
            assert_eq!(
                node.anchored_epoch().map(|e| e.0),
                Some(0),
                "genesis anchors epoch 0"
            );
        }
        // A node outside the genesis set starts joining (no chain yet).
        let cfg = ServerConfig {
            node_id: 9,
            ..base_cfg()
        };
        let (actor, _) = build_actor(&cfg, &store);
        for (_, world) in actor.entries() {
            assert!(world.as_server().is_some());
        }
    }

    #[test]
    fn events_jsonl_is_valid_shape() {
        let summary = ServerSummary {
            node: 3,
            recovered_groups: 1,
            anchored_epochs: vec![(0, Some(2))],
            ops_applied: 17,
            net_sent: 5,
            net_delivered: 6,
        };
        let text = events_jsonl(&summary, &Spans::new());
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"server_summary\""));
        assert!(lines[0].contains("\"node\":3"));
        assert!(lines[1].contains("\"command_latency\""));
    }
}
