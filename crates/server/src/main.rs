//! `rsmr-server` — run one replica of the reconfigurable machine over TCP.
//!
//! ```text
//! rsmr-server --node 0 --listen 127.0.0.1:7400 \
//!     --peer 1@127.0.0.1:7401 --peer 2@127.0.0.1:7402 \
//!     --initial-members 0,1,2 --groups 4 --storage-dir /var/lib/rsmr/n0
//! ```
//!
//! See `OPERATIONS.md` for the full operator's guide and `--help` for all
//! flags. Exits 0 on a clean (deadline-reached) shutdown, 2 on a
//! configuration error, 1 on a runtime I/O failure.

use std::process::ExitCode;
use std::sync::atomic::AtomicBool;

use rsmr_server::{serve, ServerConfig};

const USAGE: &str = "\
rsmr-server: one replica of the reconfigurable SMR machine over TCP

USAGE:
    rsmr-server [--config FILE] [FLAGS]

FLAGS (each overrides the config file):
    --config FILE            flat TOML config (see OPERATIONS.md)
    --node ID                this replica's node id
    --listen HOST:PORT       address to accept peer/client connections on
    --peer ID@HOST:PORT      a cluster member (repeat per member)
    --initial-members a,b,c  node ids of the genesis configuration
    --groups N               replication groups multiplexed here (default 1)
    --storage-dir DIR        durable state directory (omit for volatile)
    --fsync / --no-fsync     toggle fsync on writes (default on)
    --seed N                 protocol randomness seed
    --run-for-secs N         exit cleanly after N seconds
    --events-out FILE        write span/latency JSONL on shutdown
    --metrics-listen ADDR    serve /metrics, /healthz, /status over HTTP
    --stats-interval-secs N  server_stats line cadence in the events file
                             (default 10; 0 = shutdown summary only)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let cfg = match ServerConfig::from_args(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("rsmr-server: {e}");
            eprintln!("run with --help for usage");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = cfg.validate() {
        eprintln!("rsmr-server: {e}");
        return ExitCode::from(2);
    }

    eprintln!(
        "rsmr-server: node {} listening on {} ({} group(s), storage: {}, metrics: {})",
        cfg.node_id,
        cfg.listen.as_deref().unwrap_or("<none>"),
        cfg.groups,
        cfg.storage_dir
            .as_deref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "volatile".into()),
        cfg.metrics_listen.as_deref().unwrap_or("<off>"),
    );

    // The binary serves until the deadline; tests drive `serve` directly
    // with a real stop flag.
    let stop = AtomicBool::new(false);
    match serve(&cfg, &stop) {
        Ok(summary) => {
            eprintln!(
                "rsmr-server: node {} shut down cleanly: {} op(s) applied, {} group(s) recovered, {} sent / {} delivered",
                summary.node,
                summary.ops_applied,
                summary.recovered_groups,
                summary.net_sent,
                summary.net_delivered
            );
            for (g, epoch) in &summary.anchored_epochs {
                match epoch {
                    Some(e) => eprintln!("rsmr-server:   group {g}: anchored in epoch {e}"),
                    None => eprintln!("rsmr-server:   group {g}: never anchored"),
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rsmr-server: fatal: {e}");
            ExitCode::FAILURE
        }
    }
}
