//! A tiny thread-per-connection HTTP/1.1 endpoint serving the replica's
//! telemetry: Prometheus text at `/metrics`, liveness at `/healthz`, and
//! a JSON snapshot at `/status`. Hand-rolled on `std::net` — the
//! workspace carries no dependencies, and a scrape endpoint needs
//! nothing beyond request-line parsing.
//!
//! The endpoint never touches replica state directly: `/metrics` renders
//! a [`Registry`] snapshot (lock-cheap atomics plus batches the serve
//! loop publishes), and `/status` returns a JSON string the serve loop
//! re-renders periodically. A slow or stuck scraper therefore cannot
//! stall consensus.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use simnet::{render_prometheus, Registry};

/// How long a connection may dribble its request (or absorb the
/// response) before the worker gives up on it.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// The serving half of the telemetry endpoint. Dropping it stops the
/// accept loop and joins every worker.
pub struct HttpServer {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` and starts serving. `status` holds the pre-rendered
    /// `/status` body; the owner overwrites it as state changes.
    pub fn bind(
        addr: SocketAddr,
        registry: Registry,
        status: Arc<Mutex<String>>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("rsmr-http".to_owned())
            .spawn(move || accept_loop(listener, registry, status, stop_accept))?;
        Ok(HttpServer {
            local,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (port resolved when binding `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.local, Duration::from_millis(200));
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: Registry,
    status: Arc<Mutex<String>>,
    stop: Arc<AtomicBool>,
) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let registry = registry.clone();
        let status = Arc::clone(&status);
        if let Ok(t) = std::thread::Builder::new()
            .name("rsmr-http-conn".to_owned())
            .spawn(move || serve_connection(stream, &registry, &status))
        {
            workers.push(t);
        }
        // Reap finished workers so a long-lived server does not
        // accumulate handles one per scrape.
        workers.retain(|t| !t.is_finished());
    }
    for t in workers {
        let _ = t.join();
    }
}

/// Handles exactly one request: read the request line, drain the
/// headers, respond, close. No keep-alive — scrapers poll rarely and a
/// fresh connection per scrape keeps the worker lifetime bounded.
fn serve_connection(stream: TcpStream, registry: &Registry, status: &Mutex<String>) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Drain the headers so the client sees a clean close after the body.
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => continue,
            Err(_) => return,
        }
    }
    if method != "GET" {
        respond(stream, 405, "text/plain; charset=utf-8", "GET only\n");
        return;
    }
    match path {
        "/metrics" => {
            let body = render_prometheus(&registry.snapshot());
            respond(
                stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/healthz" => respond(stream, 200, "text/plain; charset=utf-8", "ok\n"),
        "/status" => {
            let body = status.lock().unwrap_or_else(|e| e.into_inner()).clone();
            respond(stream, 200, "application/json", &body);
        }
        _ => respond(stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

fn respond(mut stream: TcpStream, code: u16, content_type: &str, body: &str) {
    let reason = match code {
        200 => "OK",
        405 => "Method Not Allowed",
        _ => "Not Found",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut raw = String::new();
        use std::io::Read as _;
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn serves_metrics_healthz_and_status() {
        let registry = Registry::new();
        registry.counter("paxos.flush_idle").add(3);
        registry.histogram("storage.fsync_us").record(120);
        let status = Arc::new(Mutex::new("{\"node\":7}".to_owned()));
        let server = HttpServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            registry.clone(),
            Arc::clone(&status),
        )
        .unwrap();
        let addr = server.local_addr();

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("paxos_flush_idle 3"), "{body}");
        assert!(body.contains("storage_fsync_us_count 1"), "{body}");

        let (head, body) = get(addr, "/status");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"));
        assert_eq!(body, "{\"node\":7}");

        // Status follows the owner's updates.
        *status.lock().unwrap() = "{\"node\":8}".to_owned();
        let (_, body) = get(addr, "/status");
        assert_eq!(body, "{\"node\":8}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }
}
