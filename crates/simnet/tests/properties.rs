//! Property-based tests for the simulation substrate: deterministic event
//! ordering, wire-format round-trips, and network-model statistics.

use proptest::prelude::*;
use simnet::wire::{self, Wire};
use simnet::{
    Actor, Context, LatencyModel, Message, NetConfig, NodeId, Sim, SimDuration, SimTime, Timer,
};

#[derive(Clone, Debug)]
struct Tag(u64);
impl Message for Tag {
    fn label(&self) -> &'static str {
        "tag"
    }
}

/// Records the order in which timers fire.
struct Recorder {
    delays: Vec<(u64, u32)>, // (delay_us, kind)
    fired: Vec<u32>,
}

impl Actor for Recorder {
    type Msg = Tag;
    fn on_start(&mut self, ctx: &mut Context<'_, Tag>) {
        for &(delay, kind) in &self.delays {
            ctx.set_timer(SimDuration::from_micros(delay), kind);
        }
    }
    fn on_message(&mut self, _ctx: &mut Context<'_, Tag>, _f: NodeId, _m: Tag) {}
    fn on_timer(&mut self, _ctx: &mut Context<'_, Tag>, t: Timer) {
        self.fired.push(t.kind);
    }
}

proptest! {
    /// Timers fire in nondecreasing time order, with insertion order
    /// breaking ties — on any schedule.
    #[test]
    fn timers_fire_in_deterministic_order(
        delays in proptest::collection::vec(0u64..10_000, 1..50)
    ) {
        let tagged: Vec<(u64, u32)> = delays
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i as u32))
            .collect();
        let mut sim: Sim<Recorder> = Sim::new(0, NetConfig::lan());
        let node = sim.add_node(Recorder { delays: tagged.clone(), fired: Vec::new() });
        sim.run_for(SimDuration::from_micros(20_000));
        let fired = &sim.actor(node).unwrap().fired;
        prop_assert_eq!(fired.len(), tagged.len());
        // Expected order: stable sort by delay (ties keep insertion order).
        let mut expected = tagged.clone();
        expected.sort_by_key(|&(d, _)| d);
        let expected: Vec<u32> = expected.into_iter().map(|(_, k)| k).collect();
        prop_assert_eq!(fired, &expected);
    }

    /// The whole simulation is a pure function of the seed: two identical
    /// runs produce identical metrics.
    #[test]
    fn runs_are_reproducible(seed in 0u64..1_000_000, drop_pm in 0u64..500) {
        let run = || {
            let mut sim: Sim<Recorder> = Sim::new(seed, NetConfig::lossy(drop_pm as f64 / 1000.0));
            let a = sim.add_node(Recorder { delays: vec![], fired: vec![] });
            let b = sim.add_node(Recorder { delays: vec![], fired: vec![] });
            for i in 0..30 {
                sim.inject(a, b, Tag(i));
            }
            sim.run_until_quiet(SimDuration::from_secs(5));
            (
                sim.metrics().counter("net.delivered"),
                sim.metrics().counter("net.dropped"),
                sim.now(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Wire round-trips for arbitrary composites.
    #[test]
    fn wire_round_trips(
        a in any::<u64>(),
        b in ".*",
        c in proptest::collection::vec(any::<u32>(), 0..20),
        d in proptest::option::of(any::<u16>()),
    ) {
        let value = (a, b, (c, d));
        let bytes = wire::to_bytes(&value);
        let back = wire::from_bytes::<(u64, String, (Vec<u32>, Option<u16>))>(&bytes);
        prop_assert_eq!(back, Some(value));
    }

    /// Decoding never panics on arbitrary garbage.
    #[test]
    fn wire_decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = wire::from_bytes::<(u64, String, Vec<u32>)>(&bytes);
        let _ = wire::from_bytes::<Option<Vec<u64>>>(&bytes);
        let _ = wire::from_bytes::<String>(&bytes);
    }

    /// Sampled latencies respect the model's bounds.
    #[test]
    fn uniform_latency_in_bounds(lo in 0u64..5_000, width in 1u64..5_000, seed in any::<u64>()) {
        let model = LatencyModel::Uniform(
            SimDuration::from_micros(lo),
            SimDuration::from_micros(lo + width),
        );
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let d = model.sample(&mut rng);
            prop_assert!(d.as_micros() >= lo && d.as_micros() <= lo + width);
        }
    }
}

#[test]
fn drop_rate_statistics_are_plausible() {
    let mut sim: Sim<Recorder> = Sim::new(9, NetConfig::lan().with_drop_rate(0.3));
    let a = sim.add_node(Recorder { delays: vec![], fired: vec![] });
    let b = sim.add_node(Recorder { delays: vec![], fired: vec![] });
    const N: u64 = 5_000;
    for i in 0..N {
        sim.inject(a, b, Tag(i));
    }
    sim.run_until_quiet(SimDuration::from_secs(10));
    let dropped = sim.metrics().counter("net.dropped");
    let ratio = dropped as f64 / N as f64;
    assert!(
        (0.25..0.35).contains(&ratio),
        "drop ratio {ratio} far from configured 0.3"
    );
    assert_eq!(sim.metrics().counter("net.delivered") + dropped, N);
}

#[test]
fn virtual_time_outruns_wall_time() {
    // A year of idle virtual time must simulate instantly — the point of
    // discrete-event simulation.
    let start = std::time::Instant::now();
    let mut sim: Sim<Recorder> = Sim::new(0, NetConfig::lan());
    sim.add_node(Recorder { delays: vec![(1, 0)], fired: vec![] });
    sim.run_until(SimTime::from_secs(365 * 24 * 3600));
    assert!(start.elapsed().as_secs() < 5);
    assert_eq!(sim.now(), SimTime::from_secs(365 * 24 * 3600));
}
