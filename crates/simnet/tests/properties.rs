//! Property-style tests for the simulation substrate: deterministic event
//! ordering, wire-format round-trips, and network-model statistics.
//!
//! Cases are generated from a seeded [`SimRng`] rather than a property-test
//! framework, so the suite needs no external dependencies and every failure
//! is reproducible from the fixed seed.

use simnet::wire;
use simnet::{
    Actor, Context, LatencyModel, Message, NetConfig, NodeId, Sim, SimDuration, SimRng, SimTime,
    Timer,
};

#[derive(Clone, Debug)]
struct Tag(#[allow(dead_code)] u64); // payload distinguishes messages in Debug output
impl Message for Tag {
    fn label(&self) -> &'static str {
        "tag"
    }
}

/// Records the order in which timers fire.
struct Recorder {
    delays: Vec<(u64, u32)>, // (delay_us, kind)
    fired: Vec<u32>,
}

impl Actor for Recorder {
    type Msg = Tag;
    fn on_start(&mut self, ctx: &mut Context<'_, Tag>) {
        for &(delay, kind) in &self.delays {
            ctx.set_timer(SimDuration::from_micros(delay), kind);
        }
    }
    fn on_message(&mut self, _ctx: &mut Context<'_, Tag>, _f: NodeId, _m: Tag) {}
    fn on_timer(&mut self, _ctx: &mut Context<'_, Tag>, t: Timer) {
        self.fired.push(t.kind);
    }
}

/// Timers fire in nondecreasing time order, with insertion order breaking
/// ties — on any schedule.
#[test]
fn timers_fire_in_deterministic_order() {
    let mut gen = SimRng::seed_from_u64(1);
    for _case in 0..100 {
        let n = gen.gen_range(1usize..50);
        let tagged: Vec<(u64, u32)> = (0..n)
            .map(|i| (gen.gen_range(0u64..10_000), i as u32))
            .collect();
        let mut sim: Sim<Recorder> = Sim::new(0, NetConfig::lan());
        let node = sim.add_node(Recorder {
            delays: tagged.clone(),
            fired: Vec::new(),
        });
        sim.run_for(SimDuration::from_micros(20_000));
        let fired = &sim.actor(node).unwrap().fired;
        assert_eq!(fired.len(), tagged.len());
        // Expected order: stable sort by delay (ties keep insertion order).
        let mut expected = tagged.clone();
        expected.sort_by_key(|&(d, _)| d);
        let expected: Vec<u32> = expected.into_iter().map(|(_, k)| k).collect();
        assert_eq!(fired, &expected);
    }
}

/// The whole simulation is a pure function of the seed: two identical runs
/// produce identical metrics.
#[test]
fn runs_are_reproducible() {
    let mut gen = SimRng::seed_from_u64(2);
    for _case in 0..40 {
        let seed = gen.gen_range(0u64..1_000_000);
        let drop_pm = gen.gen_range(0u64..500);
        let run = || {
            let mut sim: Sim<Recorder> = Sim::new(seed, NetConfig::lossy(drop_pm as f64 / 1000.0));
            let a = sim.add_node(Recorder {
                delays: vec![],
                fired: vec![],
            });
            let b = sim.add_node(Recorder {
                delays: vec![],
                fired: vec![],
            });
            for i in 0..30 {
                sim.inject(a, b, Tag(i));
            }
            sim.run_until_quiet(SimDuration::from_secs(5));
            (
                sim.metrics().counter("net.delivered"),
                sim.metrics().counter("net.dropped"),
                sim.now(),
            )
        };
        assert_eq!(run(), run());
    }
}

fn random_string(gen: &mut SimRng) -> String {
    let len = gen.gen_range(0usize..32);
    (0..len)
        .map(|_| char::from_u32(gen.gen_range(0u32..0xD800)).unwrap_or('�'))
        .collect()
}

/// Wire round-trips for arbitrary composites.
#[test]
fn wire_round_trips() {
    let mut gen = SimRng::seed_from_u64(3);
    for _case in 0..200 {
        let a = gen.next_u64();
        let b = random_string(&mut gen);
        let c: Vec<u32> = (0..gen.gen_range(0usize..20))
            .map(|_| gen.next_u64() as u32)
            .collect();
        let d = if gen.gen_bool(0.5) {
            Some(gen.next_u64() as u16)
        } else {
            None
        };
        let value = (a, b, (c, d));
        let bytes = wire::to_bytes(&value);
        let back = wire::from_bytes::<(u64, String, (Vec<u32>, Option<u16>))>(&bytes);
        assert_eq!(back, Some(value));
    }
}

/// Decoding never panics on arbitrary garbage.
#[test]
fn wire_decode_is_total() {
    let mut gen = SimRng::seed_from_u64(4);
    for _case in 0..200 {
        let len = gen.gen_range(0usize..256);
        let bytes: Vec<u8> = (0..len).map(|_| gen.next_u64() as u8).collect();
        let _ = wire::from_bytes::<(u64, String, Vec<u32>)>(&bytes);
        let _ = wire::from_bytes::<Option<Vec<u64>>>(&bytes);
        let _ = wire::from_bytes::<String>(&bytes);
    }
}

/// Sampled latencies respect the model's bounds.
#[test]
fn uniform_latency_in_bounds() {
    let mut gen = SimRng::seed_from_u64(5);
    for _case in 0..50 {
        let lo = gen.gen_range(0u64..5_000);
        let width = gen.gen_range(1u64..5_000);
        let model = LatencyModel::Uniform(
            SimDuration::from_micros(lo),
            SimDuration::from_micros(lo + width),
        );
        let mut rng = SimRng::seed_from_u64(gen.next_u64());
        for _ in 0..100 {
            let d = model.sample(&mut rng);
            assert!(d.as_micros() >= lo && d.as_micros() <= lo + width);
        }
    }
}

#[test]
fn drop_rate_statistics_are_plausible() {
    let mut sim: Sim<Recorder> = Sim::new(9, NetConfig::lan().with_drop_rate(0.3));
    let a = sim.add_node(Recorder {
        delays: vec![],
        fired: vec![],
    });
    let b = sim.add_node(Recorder {
        delays: vec![],
        fired: vec![],
    });
    const N: u64 = 5_000;
    for i in 0..N {
        sim.inject(a, b, Tag(i));
    }
    sim.run_until_quiet(SimDuration::from_secs(10));
    let dropped = sim.metrics().counter("net.dropped");
    let ratio = dropped as f64 / N as f64;
    assert!(
        (0.25..0.35).contains(&ratio),
        "drop ratio {ratio} far from configured 0.3"
    );
    assert_eq!(sim.metrics().counter("net.delivered") + dropped, N);
}

#[test]
fn virtual_time_outruns_wall_time() {
    // A year of idle virtual time must simulate instantly — the point of
    // discrete-event simulation.
    let start = std::time::Instant::now();
    let mut sim: Sim<Recorder> = Sim::new(0, NetConfig::lan());
    sim.add_node(Recorder {
        delays: vec![(1, 0)],
        fired: vec![],
    });
    sim.run_until(SimTime::from_secs(365 * 24 * 3600));
    assert!(start.elapsed().as_secs() < 5);
    assert_eq!(sim.now(), SimTime::from_secs(365 * 24 * 3600));
}
