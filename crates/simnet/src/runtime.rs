//! Drives an unmodified [`Actor`] on real backends: a [`Clock`], a
//! [`Transport`] and a [`StorageBackend`].
//!
//! [`NodeRuntime`] is the real-world twin of [`crate::Sim`]: the same
//! callback discipline (`on_start` / `on_message` / `on_timer`, effects
//! buffered in a [`crate::Context`] and applied afterwards), the same
//! metrics counters, the same typed event stream — but messages travel as
//! [`crate::wire::Wire`] frames over a transport, timers fire off the
//! wall clock, and every storage mutation is written through to the
//! backend *before* the frames emitted by the same callback leave the
//! process (the write-ahead discipline consensus actors assume).
//!
//! The actor cannot tell the difference; that is the point. A protocol is
//! developed and model-checked under the simulator, then deployed by
//! handing the very same type to a `NodeRuntime` (see the `rsmr-server`
//! binary).

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};
use std::time::{Duration, Instant};

use crate::actor::{Actor, Context, Emit, Message, Timer, TimerId};
use crate::metrics::Metrics;
use crate::observe::{DropReason, EventBus, Observer, SimEvent};
use crate::rng::SimRng;
use crate::sim::NodeId;
use crate::storage::StableStore;
use crate::time::SimTime;
use crate::trace::Trace;
use crate::transport::{Clock, StorageBackend, Transport, TransportEvent};
use crate::wire::{self, Wire};

/// Tuning for a [`NodeRuntime`].
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Seed for the actor's deterministic RNG (protocol randomness such as
    /// retry jitter; real-runtime scheduling is of course not seeded).
    pub seed: u64,
    /// Longest single transport wait; shorter waits are used when a timer
    /// is due sooner. Bounds how late a timer can fire.
    pub poll_slice: Duration,
    /// Call [`StorageBackend::sync`] after every batch of dirty keys. Turn
    /// off only when the backend is allowed to lose acknowledged writes
    /// (benchmarks, tests).
    pub sync_writes: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            seed: 0,
            poll_slice: Duration::from_millis(5),
            sync_writes: true,
        }
    }
}

#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct TimerEntry {
    at: SimTime,
    seq: u64,
    id: TimerId,
    kind: u32,
}

/// Hosts one [`Actor`] on real backends. See the module docs.
pub struct NodeRuntime<A: Actor> {
    node: NodeId,
    actor: A,
    clock: Box<dyn Clock>,
    transport: Box<dyn Transport>,
    backend: Box<dyn StorageBackend>,
    store: StableStore,
    rng: SimRng,
    metrics: Metrics,
    trace: Trace,
    bus: EventBus,
    next_timer_id: u64,
    next_timer_seq: u64,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    cancelled: BTreeSet<TimerId>,
    selfq: VecDeque<A::Msg>,
    emit_scratch: Vec<Emit<A::Msg>>,
    cfg: RuntimeConfig,
    started: bool,
}

impl<A: Actor> NodeRuntime<A>
where
    A::Msg: Wire,
{
    /// Builds a runtime around an actor and its backends.
    ///
    /// `store` is the node's recovery state, normally obtained from
    /// [`StorageBackend::load`] on the same `backend` *before* building the
    /// actor (so the actor can be reconstructed from it — the real-world
    /// analogue of [`crate::Sim::restart`]). The runtime takes ownership
    /// and writes every mutation through to `backend`.
    ///
    /// The actor's `on_start` runs on the first [`NodeRuntime::step`] (or
    /// explicit [`NodeRuntime::start`]), so observers can be installed
    /// first.
    pub fn new(
        node: NodeId,
        actor: A,
        clock: impl Clock + 'static,
        transport: impl Transport + 'static,
        backend: impl StorageBackend + 'static,
        mut store: StableStore,
        cfg: RuntimeConfig,
    ) -> Self {
        store.enable_journal();
        store.take_dirty(); // loading is not a mutation
        NodeRuntime {
            node,
            actor,
            clock: Box::new(clock),
            transport: Box::new(transport),
            backend: Box::new(backend),
            store,
            rng: SimRng::seed_from_u64(cfg.seed ^ node.0),
            metrics: Metrics::new(),
            trace: Trace::default(),
            bus: EventBus::new(),
            next_timer_id: 0,
            next_timer_seq: 0,
            timers: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            selfq: VecDeque::new(),
            emit_scratch: Vec::new(),
            cfg,
            started: false,
        }
    }

    /// Installs an [`Observer`] on the typed event stream — the same
    /// machinery as [`crate::Sim::add_observer`], so span/latency
    /// aggregators like [`crate::observe::Spans`] work unchanged on real
    /// runs. Install before the first step to see startup events.
    pub fn add_observer(&mut self, obs: impl Observer + 'static) {
        self.bus.add(obs);
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The current instant according to the runtime's clock.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The hosted actor.
    pub fn actor(&self) -> &A {
        &self.actor
    }

    /// The metrics sink (same counters as the simulator where they apply:
    /// `net.sent`, `net.delivered`, per-label counts, …).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Read access to the node's stable store.
    pub fn store(&self) -> &StableStore {
        &self.store
    }

    /// The transport's listening address, if it has one.
    pub fn local_addr(&self) -> Option<std::net::SocketAddr> {
        self.transport.local_addr()
    }

    /// Runs the actor's `on_start` if it has not run yet. Idempotent;
    /// called implicitly by the stepping methods.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        self.run_callback(|actor, ctx| actor.on_start(ctx));
    }

    /// One pump iteration: fire due timers, drain self-sends, then wait up
    /// to `max_wait` for one transport event and dispatch it. Returns
    /// `true` when any callback ran.
    pub fn step(&mut self, max_wait: Duration) -> bool {
        self.start();
        let mut progressed = self.fire_due_timers();
        progressed |= self.drain_self_sends();

        let mut wait = max_wait.min(self.cfg.poll_slice);
        let now = self.clock.now();
        if let Some(Reverse(next)) = self.timers.peek() {
            let until = next.at.as_micros().saturating_sub(now.as_micros());
            wait = wait.min(Duration::from_micros(until));
        }
        match self.transport.poll(wait) {
            Some(TransportEvent::Frame { from, payload }) => {
                let bytes = payload.len() as u64;
                match wire::from_bytes::<A::Msg>(&payload) {
                    Some(msg) => {
                        self.metrics.net.delivered += 1;
                        self.metrics.net.bytes += bytes;
                        let label = msg.label();
                        let to = self.node;
                        self.bus
                            .emit_with(now, || SimEvent::MsgDelivered { from, to, label });
                        self.run_callback(|actor, ctx| actor.on_message(ctx, from, msg));
                        progressed = true;
                    }
                    None => {
                        self.metrics.incr("rt.decode_errors", 1);
                    }
                }
            }
            Some(TransportEvent::PeerConnected(_)) => {
                self.metrics.incr("rt.peer_connects", 1);
            }
            Some(TransportEvent::PeerDisconnected(_)) => {
                self.metrics.incr("rt.peer_disconnects", 1);
            }
            None => {}
        }
        progressed |= self.fire_due_timers();
        progressed | self.drain_self_sends()
    }

    /// Pumps for `wall` of real time.
    pub fn run_for(&mut self, wall: Duration) {
        let deadline = Instant::now() + wall;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return;
            }
            self.step(left);
        }
    }

    /// Pumps until `pred(actor)` holds or `timeout` of real time elapses.
    /// Returns whether the predicate was met.
    pub fn run_until(&mut self, mut pred: impl FnMut(&A) -> bool, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if pred(&self.actor) {
                return true;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            self.step(left);
        }
    }

    /// Runs a closure against the actor with a full [`Context`], applying
    /// the emitted effects — how harnesses hand work (e.g. an initial
    /// request) to the actor, mirroring [`crate::Sim::with_node`].
    pub fn with_actor<R>(&mut self, f: impl FnOnce(&mut A, &mut Context<'_, A::Msg>) -> R) -> R {
        self.start();
        let mut result = None;
        self.run_callback(|actor, ctx| result = Some(f(actor, ctx)));
        result.expect("callback ran")
    }

    /// Flushes and syncs storage, then tears down the transport and
    /// returns the actor for inspection.
    pub fn shutdown(mut self) -> A {
        self.flush_storage();
        self.actor
    }

    fn fire_due_timers(&mut self) -> bool {
        let mut fired = false;
        // Bounded pass: only timers due when the pass began, and at most
        // as many firings as the heap held at entry. A callback that
        // outlasts its own re-arm interval (a 5ms tick doing a restart's
        // worth of catch-up) would otherwise be due again by the time the
        // loop re-peeks, and the pass would spin forever — the transport
        // never polled, inbound starved, `run_for` deadlines and the stop
        // flag never checked. Re-armed timers fire on the next step.
        let horizon = self.clock.now();
        let mut budget = self.timers.len();
        loop {
            if budget == 0 {
                return fired;
            }
            match self.timers.peek() {
                Some(Reverse(e)) if e.at <= horizon => {}
                _ => return fired,
            }
            budget -= 1;
            let Reverse(e) = self.timers.pop().expect("peeked");
            if self.cancelled.remove(&e.id) {
                continue;
            }
            let now = self.clock.now();
            let node = self.node;
            let kind = e.kind;
            self.bus
                .emit_with(now, || SimEvent::TimerFired { node, kind });
            self.run_callback(|actor, ctx| {
                actor.on_timer(ctx, Timer { id: e.id, kind });
            });
            fired = true;
        }
    }

    fn drain_self_sends(&mut self) -> bool {
        let mut any = false;
        // Same bounding as `fire_due_timers`: deliver only the self-sends
        // queued when the pass began, so a handler that replies to itself
        // cannot starve the transport poll.
        let mut budget = self.selfq.len();
        while budget > 0 {
            budget -= 1;
            let Some(msg) = self.selfq.pop_front() else {
                break;
            };
            let now = self.clock.now();
            let node = self.node;
            let label = msg.label();
            self.metrics.net.delivered += 1;
            self.bus.emit_with(now, || SimEvent::MsgDelivered {
                from: node,
                to: node,
                label,
            });
            self.run_callback(|actor, ctx| actor.on_message(ctx, node, msg));
            any = true;
        }
        any
    }

    fn run_callback(&mut self, f: impl FnOnce(&mut A, &mut Context<'_, A::Msg>)) {
        let mut out = std::mem::take(&mut self.emit_scratch);
        let now = self.clock.now();
        {
            let mut ctx = Context {
                node: self.node,
                now,
                rng: &mut self.rng,
                out: &mut out,
                storage: &mut self.store,
                key_prefix: "",
                metrics: &mut self.metrics,
                next_timer_id: &mut self.next_timer_id,
                trace: &mut self.trace,
                bus: &mut self.bus,
            };
            f(&mut self.actor, &mut ctx);
        }
        // Durability before visibility: mutations hit the backend before
        // any frame emitted by this callback leaves the process.
        self.flush_storage();
        self.apply_emits(now, &mut out);
        self.emit_scratch = out;
    }

    fn flush_storage(&mut self) {
        let dirty = self.store.take_dirty();
        if dirty.is_empty() {
            return;
        }
        for key in &dirty {
            let value = self.store.get(key);
            self.backend
                .apply(key, value)
                .unwrap_or_else(|e| panic!("storage backend failed writing {key:?}: {e}"));
        }
        if self.cfg.sync_writes {
            self.backend
                .sync()
                .unwrap_or_else(|e| panic!("storage backend failed to sync: {e}"));
        }
        self.metrics.incr("rt.storage_flushes", 1);
        self.metrics
            .incr("rt.storage_keys_written", dirty.len() as u64);
    }

    fn apply_emits(&mut self, now: SimTime, emits: &mut Vec<Emit<A::Msg>>) {
        for emit in emits.drain(..) {
            match emit {
                Emit::Send { to, msg } => {
                    let label = msg.label();
                    let origin = self.node;
                    self.metrics.net.sent += 1;
                    self.metrics.incr_label(label, 1);
                    if to == origin {
                        // Self-sends never cross the transport; they are
                        // delivered on the same pump iteration.
                        self.bus.emit_with(now, || SimEvent::MsgSent {
                            from: origin,
                            to,
                            label,
                            bytes: 0,
                        });
                        self.selfq.push_back(msg);
                        continue;
                    }
                    let payload = wire::to_bytes(&msg);
                    let bytes = payload.len() as u64;
                    self.metrics.net.bytes += bytes;
                    self.bus.emit_with(now, || SimEvent::MsgSent {
                        from: origin,
                        to,
                        label,
                        bytes,
                    });
                    if !self.transport.send(to, payload) {
                        self.metrics.net.dropped += 1;
                        self.bus.emit_with(now, || SimEvent::MsgDropped {
                            from: origin,
                            to,
                            label,
                            reason: DropReason::Loss,
                        });
                    }
                }
                Emit::SetTimer { id, at, kind } => {
                    self.timers.push(Reverse(TimerEntry {
                        at,
                        seq: self.next_timer_seq,
                        id,
                        kind,
                    }));
                    self.next_timer_seq += 1;
                }
                Emit::CancelTimer(id) => {
                    self.cancelled.insert(id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{ChannelHub, ManualClock, MemStorage, NullTransport};
    use crate::SimDuration;

    /// Echoes pings back incremented; persists the highest value seen; a
    /// timer (kind 7) set at start records its firing.
    struct Echo {
        received: u32,
        timer_fired: bool,
    }

    #[derive(Clone, Debug)]
    struct Ping(u32);
    impl Message for Ping {
        fn label(&self) -> &'static str {
            "ping"
        }
    }
    impl Wire for Ping {
        fn encode(&self, buf: &mut Vec<u8>) {
            self.0.encode(buf);
        }
        fn decode(buf: &mut &[u8]) -> Option<Self> {
            Some(Ping(u32::decode(buf)?))
        }
    }

    impl Actor for Echo {
        type Msg = Ping;
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.set_timer(SimDuration::from_millis(10), 7);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, msg: Ping) {
            self.received += 1;
            ctx.storage().put_u64("max", u64::from(msg.0));
            if msg.0 < 3 {
                ctx.send(from, Ping(msg.0 + 1));
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Ping>, timer: Timer) {
            assert_eq!(timer.kind, 7);
            self.timer_fired = true;
        }
    }

    fn echo_runtime(hub: &ChannelHub, id: u64, clock: ManualClock) -> NodeRuntime<Echo> {
        NodeRuntime::new(
            NodeId(id),
            Echo {
                received: 0,
                timer_fired: false,
            },
            clock,
            hub.endpoint(NodeId(id)),
            MemStorage,
            StableStore::new(),
            RuntimeConfig {
                poll_slice: Duration::from_millis(1),
                ..RuntimeConfig::default()
            },
        )
    }

    #[test]
    fn two_runtimes_ping_pong_over_channels() {
        let hub = ChannelHub::new();
        let clock = ManualClock::new();
        let mut a = echo_runtime(&hub, 1, clock.clone());
        let mut b = echo_runtime(&hub, 2, clock.clone());
        a.with_actor(|_, ctx| ctx.send(NodeId(2), Ping(0)));
        // Alternate stepping until the volley (0,1,2,3) completes.
        for _ in 0..50 {
            b.step(Duration::from_millis(5));
            a.step(Duration::from_millis(5));
        }
        assert_eq!(b.actor().received + a.actor().received, 4);
        assert_eq!(b.store().get_u64("max"), Some(2));
        assert_eq!(a.store().get_u64("max"), Some(3));
        assert!(a.metrics().counter("net.sent") >= 2);
        assert_eq!(
            a.metrics().label_count("ping") + b.metrics().label_count("ping"),
            4
        );
    }

    #[test]
    fn timers_fire_on_the_manual_clock_and_cancel() {
        let clock = ManualClock::new();
        let mut rt = NodeRuntime::new(
            NodeId(1),
            Echo {
                received: 0,
                timer_fired: false,
            },
            clock.clone(),
            NullTransport,
            MemStorage,
            StableStore::new(),
            RuntimeConfig {
                poll_slice: Duration::from_micros(100),
                ..RuntimeConfig::default()
            },
        );
        rt.step(Duration::from_micros(100));
        assert!(!rt.actor().timer_fired, "clock has not moved");
        clock.advance(9_999);
        rt.step(Duration::from_micros(100));
        assert!(!rt.actor().timer_fired, "one microsecond early");
        clock.advance(1);
        rt.step(Duration::from_micros(100));
        assert!(rt.actor().timer_fired, "due timers fire");

        // A cancelled timer never fires.
        let id = rt.with_actor(|_, ctx| ctx.set_timer(SimDuration::from_millis(1), 7));
        rt.with_actor(|_, ctx| ctx.cancel_timer(id));
        let fired_before = rt.actor().timer_fired;
        clock.advance(10_000);
        rt.step(Duration::from_micros(100));
        assert_eq!(rt.actor().timer_fired, fired_before);
    }

    #[test]
    fn self_sends_deliver_without_a_transport() {
        let clock = ManualClock::new();
        let mut rt = NodeRuntime::new(
            NodeId(5),
            Echo {
                received: 0,
                timer_fired: false,
            },
            clock,
            NullTransport,
            MemStorage,
            StableStore::new(),
            RuntimeConfig::default(),
        );
        rt.with_actor(|_, ctx| {
            let me = ctx.node_id();
            ctx.send(me, Ping(3));
        });
        rt.step(Duration::from_millis(1));
        assert_eq!(rt.actor().received, 1);
    }

    #[test]
    fn storage_writes_through_to_the_backend() {
        use crate::transport::{FileStorage, StorageBackend};
        let dir = std::env::temp_dir().join(format!("rsmr-rt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let clock = ManualClock::new();
        {
            let mut backend = FileStorage::open(&dir, false).unwrap();
            let store = backend.load().unwrap();
            let mut rt = NodeRuntime::new(
                NodeId(1),
                Echo {
                    received: 0,
                    timer_fired: false,
                },
                clock.clone(),
                NullTransport,
                backend,
                store,
                RuntimeConfig::default(),
            );
            rt.with_actor(|_, ctx| ctx.storage().put_u64("acceptor/promised", 42));
            rt.shutdown();
        }
        // A fresh process sees the write.
        let mut backend = FileStorage::open(&dir, false).unwrap();
        let store = backend.load().unwrap();
        assert_eq!(store.get_u64("acceptor/promised"), Some(42));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// An actor whose timer callback re-arms an immediately-due timer and
    /// whose message handler replies to itself. Either pattern (or a tick
    /// whose work outlasts the tick interval, the real-world shape) used
    /// to trap `step` in an unbounded drain pass: the transport was never
    /// polled again and `run_for` never regained control. The regression
    /// check is that `step` *returns at all*.
    struct Storm {
        ticks: u32,
        echoes: u32,
    }

    impl Actor for Storm {
        type Msg = Ping;
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.set_timer(SimDuration::ZERO, 1);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Ping>, _from: NodeId, msg: Ping) {
            self.echoes += 1;
            let me = ctx.node_id();
            ctx.send(me, msg);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Ping>, _timer: Timer) {
            self.ticks += 1;
            ctx.set_timer(SimDuration::ZERO, 1);
        }
    }

    #[test]
    fn always_due_timers_cannot_starve_a_step() {
        // The manual clock never advances, so the re-armed timer is due
        // the instant it is set — the worst case of "callback outlasts
        // its own re-arm interval".
        let clock = ManualClock::new();
        let mut rt = NodeRuntime::new(
            NodeId(1),
            Storm {
                ticks: 0,
                echoes: 0,
            },
            clock,
            NullTransport,
            MemStorage,
            StableStore::new(),
            RuntimeConfig::default(),
        );
        for _ in 0..5 {
            assert!(rt.step(Duration::ZERO), "bounded progress each step");
        }
        // Each step fires the one due timer per drain pass (two passes per
        // step), never more: the re-armed duplicate waits for the next step.
        let ticks = rt.actor().ticks;
        assert!((1..=10).contains(&ticks), "got {ticks} ticks");
    }

    #[test]
    fn self_send_loops_cannot_starve_a_step() {
        let clock = ManualClock::new();
        let mut rt = NodeRuntime::new(
            NodeId(1),
            Storm {
                ticks: 0,
                echoes: 0,
            },
            clock,
            NullTransport,
            MemStorage,
            StableStore::new(),
            RuntimeConfig::default(),
        );
        rt.with_actor(|_, ctx| {
            let me = ctx.node_id();
            ctx.send(me, Ping(0));
        });
        for _ in 0..5 {
            assert!(rt.step(Duration::ZERO), "bounded progress each step");
        }
        let echoes = rt.actor().echoes;
        assert!((1..=11).contains(&echoes), "got {echoes} echoes");
    }

    #[test]
    fn observers_see_runtime_events() {
        use crate::observe::{shared, EventLog};
        let hub = ChannelHub::new();
        let clock = ManualClock::new();
        let mut a = echo_runtime(&hub, 1, clock.clone());
        let mut b = echo_runtime(&hub, 2, clock.clone());
        let log = shared(EventLog::new());
        a.add_observer(log.clone());
        a.with_actor(|_, ctx| ctx.send(NodeId(2), Ping(2)));
        for _ in 0..10 {
            b.step(Duration::from_millis(2));
            a.step(Duration::from_millis(2));
        }
        let events = log.borrow().events().to_vec();
        assert!(
            events
                .iter()
                .any(|(_, e)| matches!(e, SimEvent::MsgSent { label: "ping", .. })),
            "sends observed: {events:?}"
        );
        assert!(
            events
                .iter()
                .any(|(_, e)| matches!(e, SimEvent::MsgDelivered { .. })),
            "deliveries observed"
        );
    }
}
