//! A small, fast, deterministic PRNG for the simulation substrate.
//!
//! The simulator needs reproducible randomness — a run must be a pure
//! function of its seed — but nothing cryptographic. [`SimRng`] is
//! xoshiro256++ seeded through SplitMix64: a handful of shifts and adds
//! per draw, no external dependencies, and stable output across platforms
//! and releases (the sequence is part of the substrate's determinism
//! contract; see `DESIGN.md`).

use std::ops::{Range, RangeInclusive};

/// A seeded xoshiro256++ generator.
///
/// ```
/// use simnet::rng::SimRng;
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 state expansion,
    /// the standard recommendation of the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `range` (`start..end` or `start..=end` over the
    /// integer types, or an `f64` half-open range).
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform draw in `[0, bound)` (Lemire's multiply-shift; the bias for
    /// bounds far below 2^64 is immaterial for simulation workloads).
    #[inline]
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Range types [`SimRng::gen_range`] accepts.
pub trait SampleRange {
    /// The drawn value's type.
    type Output;
    /// Draws uniformly from this range.
    fn sample(self, rng: &mut SimRng) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SimRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.bounded_u64(span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SimRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.bounded_u64(span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut SimRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=7);
            assert!((5..=7).contains(&w));
            let x = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&x));
        }
    }

    #[test]
    fn inclusive_range_reaches_both_endpoints() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn f64_range_and_unit_interval() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            let v = rng.gen_range(2.5..3.5);
            assert!((2.5..3.5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SimRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let ratio = hits as f64 / 100_000.0;
        assert!((0.28..0.32).contains(&ratio), "ratio {ratio}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn uniformity_is_plausible_per_bucket() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((9_000..11_000).contains(&b), "bucket {i}: {b}");
        }
    }
}
