//! Counters, histograms and timelines for experiments.

use std::collections::BTreeMap;

use crate::time::SimTime;

/// A raw-sample histogram with quantile queries.
///
/// Samples are stored verbatim (simulation scale makes this cheap) and
/// sorted lazily on query.
///
/// ```
/// use simnet::Histogram;
/// let mut h = Histogram::default();
/// for v in 0..=100 { h.observe(v as f64); }
/// assert_eq!(h.quantile(0.5), 50.0);
/// assert_eq!(h.max(), 100.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, value: f64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) using nearest-rank interpolation, or 0
    /// when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("histogram samples must not be NaN"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        self.samples[idx]
    }

    /// The raw samples, unsorted.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// A time-stamped series of values (e.g. commits per bin during a run).
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    points: Vec<(SimTime, f64)>,
}

impl Timeline {
    /// Appends a point. Points are expected in nondecreasing time order (the
    /// simulator's clock guarantees this for in-callback pushes).
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t, v));
    }

    /// The raw points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Sums point values into fixed-width bins over `[start, end)`; returns
    /// `(bin_start, sum)` for every bin, including empty ones.
    pub fn binned(
        &self,
        start: SimTime,
        end: SimTime,
        bin: crate::SimDuration,
    ) -> Vec<(SimTime, f64)> {
        assert!(!bin.is_zero(), "bin width must be positive");
        let width = bin.as_micros();
        let span = end.since(start).as_micros();
        let nbins = (span / width + u64::from(!span.is_multiple_of(width))) as usize;
        let mut out: Vec<(SimTime, f64)> =
            (0..nbins).map(|i| (start + bin * i as u64, 0.0)).collect();
        for &(t, v) in &self.points {
            if t < start || t >= end {
                continue;
            }
            let idx = (t.since(start).as_micros() / width) as usize;
            out[idx].1 += v;
        }
        out
    }

    /// The longest contiguous run of zero-valued bins, in bins, over
    /// `[start, end)` — the "service interruption window" measurement.
    pub fn longest_gap_bins(&self, start: SimTime, end: SimTime, bin: crate::SimDuration) -> usize {
        let bins = self.binned(start, end, bin);
        let mut longest = 0usize;
        let mut current = 0usize;
        for (_, v) in bins {
            if v == 0.0 {
                current += 1;
                longest = longest.max(current);
            } else {
                current = 0;
            }
        }
        longest
    }
}

/// The network counters every simulation updates on the per-message fast
/// path; stored as plain fields to avoid map lookups.
#[derive(Clone, Debug, Default)]
pub(crate) struct NetCounters {
    pub(crate) sent: u64,
    pub(crate) delivered: u64,
    pub(crate) bytes: u64,
    pub(crate) dropped: u64,
    pub(crate) partitioned: u64,
    pub(crate) dropped_down: u64,
    pub(crate) dropped_unknown: u64,
}

/// The global metrics sink shared by every node in a simulation.
///
/// Every metric name in the workspace is a string literal, so all maps are
/// keyed by `&'static str`: recording a counter, sample or timeline point
/// never allocates. Lookups still accept any `&str`.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    /// Per-message-label counters, keyed by the `'static` label — the
    /// allocation-free fast path for the per-message accounting.
    labels: BTreeMap<&'static str, u64>,
    pub(crate) net: NetCounters,
    histograms: BTreeMap<&'static str, Histogram>,
    timelines: BTreeMap<&'static str, Timeline>,
}

impl Metrics {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the named counter, creating it at zero if absent. The
    /// `net.*` counters are backed by dedicated fields (the per-message
    /// fast path) but remain addressable by name.
    pub fn incr(&mut self, name: &'static str, n: u64) {
        match name {
            "net.sent" => self.net.sent += n,
            "net.delivered" => self.net.delivered += n,
            "net.bytes" => self.net.bytes += n,
            "net.dropped" => self.net.dropped += n,
            "net.partitioned" => self.net.partitioned += n,
            "net.dropped_down" => self.net.dropped_down += n,
            "net.dropped_unknown" => self.net.dropped_unknown += n,
            _ => *self.counters.entry(name).or_insert(0) += n,
        }
    }

    /// Adds `n` to a static-label counter (used for per-message-kind
    /// accounting; avoids allocating a key per event).
    pub fn incr_label(&mut self, label: &'static str, n: u64) {
        *self.labels.entry(label).or_insert(0) += n;
    }

    /// Value of a static-label counter.
    pub fn label_count(&self, label: &str) -> u64 {
        self.labels.get(label).copied().unwrap_or(0)
    }

    /// All static-label counters whose label starts with `prefix`.
    pub fn labels_with_prefix(&self, prefix: &str) -> Vec<(&'static str, u64)> {
        self.labels
            .iter()
            .filter(|(l, _)| l.starts_with(prefix))
            .map(|(&l, &v)| (l, v))
            .collect()
    }

    /// Current value of the named counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        match name {
            "net.sent" => self.net.sent,
            "net.delivered" => self.net.delivered,
            "net.bytes" => self.net.bytes,
            "net.dropped" => self.net.dropped,
            "net.partitioned" => self.net.partitioned,
            "net.dropped_down" => self.net.dropped_down,
            "net.dropped_unknown" => self.net.dropped_unknown,
            _ => self.counters.get(name).copied().unwrap_or(0),
        }
    }

    /// All counters whose name starts with `prefix`, in name order
    /// (including the field-backed `net.*` counters, when nonzero).
    ///
    /// Both sources are already sorted — the map by key, the `net.*` fields
    /// listed in name order — so this is a single ordered merge with no
    /// re-sort. `incr` routes `net.*` names to the fields, so the two
    /// sequences never share a key.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        let net = [
            ("net.bytes", self.net.bytes),
            ("net.delivered", self.net.delivered),
            ("net.dropped", self.net.dropped),
            ("net.dropped_down", self.net.dropped_down),
            ("net.dropped_unknown", self.net.dropped_unknown),
            ("net.partitioned", self.net.partitioned),
            ("net.sent", self.net.sent),
        ];
        let mut dynamic = self
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(&k, &v)| (k, v))
            .peekable();
        let mut fixed = net
            .into_iter()
            .filter(|&(k, v)| v > 0 && k.starts_with(prefix))
            .peekable();
        let mut out = Vec::new();
        loop {
            let take_dynamic = match (dynamic.peek(), fixed.peek()) {
                (Some(&(ka, _)), Some(&(kb, _))) => ka <= kb,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (k, v) = if take_dynamic {
                dynamic.next().unwrap()
            } else {
                fixed.next().unwrap()
            };
            out.push((k.to_owned(), v));
        }
        out
    }

    /// Records a sample in the named histogram.
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Mutable access (needed for quantile queries, which sort lazily).
    pub fn histogram_mut(&mut self, name: &str) -> Option<&mut Histogram> {
        self.histograms.get_mut(name)
    }

    /// Appends a point to the named timeline.
    pub fn timeline_push(&mut self, name: &'static str, t: SimTime, v: f64) {
        self.timelines.entry(name).or_default().push(t, v);
    }

    /// The named timeline, if any points were recorded.
    pub fn timeline(&self, name: &str) -> Option<&Timeline> {
        self.timelines.get(name)
    }

    /// An FNV-1a digest over every counter, label, net field, histogram
    /// sample and timeline point, in deterministic order. Two runs with the
    /// same seed must produce identical fingerprints — the determinism
    /// regression tests rely on this.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h = (h ^ u64::from(*b)).wrapping_mul(0x100000001b3);
            }
        };
        for (k, v) in &self.counters {
            eat(k.as_bytes());
            eat(&v.to_le_bytes());
        }
        for (k, v) in &self.labels {
            eat(k.as_bytes());
            eat(&v.to_le_bytes());
        }
        for v in [
            self.net.sent,
            self.net.delivered,
            self.net.bytes,
            self.net.dropped,
            self.net.partitioned,
            self.net.dropped_down,
            self.net.dropped_unknown,
        ] {
            eat(&v.to_le_bytes());
        }
        for (k, hist) in &self.histograms {
            eat(k.as_bytes());
            for s in hist.samples() {
                eat(&s.to_bits().to_le_bytes());
            }
        }
        for (k, tl) in &self.timelines {
            eat(k.as_bytes());
            for &(t, v) in tl.points() {
                eat(&t.as_micros().to_le_bytes());
                eat(&v.to_bits().to_le_bytes());
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn counters_accumulate_and_scan_by_prefix() {
        let mut m = Metrics::new();
        m.incr("net.sent", 2);
        m.incr("net.sent", 3);
        m.incr("net.dropped", 1);
        m.incr("app.commit", 9);
        assert_eq!(m.counter("net.sent"), 5);
        assert_eq!(m.counter("missing"), 0);
        let net = m.counters_with_prefix("net.");
        assert_eq!(net, vec![("net.dropped".into(), 1), ("net.sent".into(), 5)]);
    }

    #[test]
    fn histogram_quantiles_on_known_data() {
        let mut h = Histogram::default();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(0.5), 3.0);
        assert_eq!(h.quantile(1.0), 5.0);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let mut h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn timeline_binning_sums_and_pads() {
        let mut t = Timeline::default();
        t.push(SimTime::from_millis(1), 1.0);
        t.push(SimTime::from_millis(2), 1.0);
        t.push(SimTime::from_millis(25), 4.0);
        let bins = t.binned(
            SimTime::ZERO,
            SimTime::from_millis(30),
            SimDuration::from_millis(10),
        );
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[0], (SimTime::ZERO, 2.0));
        assert_eq!(bins[1], (SimTime::from_millis(10), 0.0));
        assert_eq!(bins[2], (SimTime::from_millis(20), 4.0));
    }

    #[test]
    fn longest_gap_finds_the_interruption_window() {
        let mut t = Timeline::default();
        t.push(SimTime::from_millis(5), 1.0);
        // bins 1..=3 empty
        t.push(SimTime::from_millis(45), 1.0);
        t.push(SimTime::from_millis(55), 1.0);
        let gap = t.longest_gap_bins(
            SimTime::ZERO,
            SimTime::from_millis(60),
            SimDuration::from_millis(10),
        );
        assert_eq!(gap, 3);
    }

    #[test]
    fn out_of_range_points_are_ignored_by_binning() {
        let mut t = Timeline::default();
        t.push(SimTime::from_millis(100), 7.0);
        let bins = t.binned(
            SimTime::ZERO,
            SimTime::from_millis(50),
            SimDuration::from_millis(10),
        );
        assert!(bins.iter().all(|&(_, v)| v == 0.0));
    }
}
