//! Counters, histograms and timelines for experiments.

use std::collections::BTreeMap;

use crate::telemetry::{Export, LogHistogram};
use crate::time::SimTime;

/// A raw-sample histogram with quantile queries.
///
/// Samples are stored verbatim (simulation scale makes this cheap) and
/// sorted lazily on query.
///
/// ```
/// use simnet::Histogram;
/// let mut h = Histogram::default();
/// for v in 0..=100 { h.observe(v as f64); }
/// assert_eq!(h.quantile(0.5), 50.0);
/// assert_eq!(h.max(), 100.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, value: f64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) using nearest-rank interpolation, or 0
    /// when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("histogram samples must not be NaN"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        self.samples[idx]
    }

    /// The raw samples, unsorted.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// A time-stamped series of values (e.g. commits per bin during a run).
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    points: Vec<(SimTime, f64)>,
}

impl Timeline {
    /// Appends a point. Points are expected in nondecreasing time order (the
    /// simulator's clock guarantees this for in-callback pushes).
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t, v));
    }

    /// The raw points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Sums point values into fixed-width bins over `[start, end)`; returns
    /// `(bin_start, sum)` for every bin, including empty ones. An empty or
    /// inverted window (`end <= start`) yields no bins.
    pub fn binned(
        &self,
        start: SimTime,
        end: SimTime,
        bin: crate::SimDuration,
    ) -> Vec<(SimTime, f64)> {
        assert!(!bin.is_zero(), "bin width must be positive");
        if end <= start {
            // Don't rely on `since()` saturating: an inverted window is
            // explicitly empty, not a zero-width window starting at `start`.
            return Vec::new();
        }
        let width = bin.as_micros();
        let span = end.since(start).as_micros();
        let nbins = (span / width + u64::from(!span.is_multiple_of(width))) as usize;
        let mut out: Vec<(SimTime, f64)> =
            (0..nbins).map(|i| (start + bin * i as u64, 0.0)).collect();
        for &(t, v) in &self.points {
            if t < start || t >= end {
                continue;
            }
            let idx = (t.since(start).as_micros() / width) as usize;
            out[idx].1 += v;
        }
        out
    }

    /// The longest contiguous run of zero-valued bins, in bins, over
    /// `[start, end)` — the "service interruption window" measurement.
    /// An empty or inverted window (`end <= start`) has no gap (0 bins).
    pub fn longest_gap_bins(&self, start: SimTime, end: SimTime, bin: crate::SimDuration) -> usize {
        let bins = self.binned(start, end, bin);
        let mut longest = 0usize;
        let mut current = 0usize;
        for (_, v) in bins {
            if v == 0.0 {
                current += 1;
                longest = longest.max(current);
            } else {
                current = 0;
            }
        }
        longest
    }
}

/// The network counters every simulation updates on the per-message fast
/// path; stored as plain fields to avoid map lookups.
#[derive(Clone, Debug, Default)]
pub(crate) struct NetCounters {
    pub(crate) sent: u64,
    pub(crate) delivered: u64,
    pub(crate) bytes: u64,
    pub(crate) dropped: u64,
    pub(crate) corrupted: u64,
    pub(crate) partitioned: u64,
    pub(crate) dropped_down: u64,
    pub(crate) dropped_unknown: u64,
}

/// The global metrics sink shared by every node in a simulation.
///
/// Every metric name in the workspace is a string literal, so all maps are
/// keyed by `&'static str`: recording a counter, sample or timeline point
/// never allocates. Lookups still accept any `&str`.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    /// Per-message-label counters, keyed by the `'static` label — the
    /// allocation-free fast path for the per-message accounting.
    labels: BTreeMap<&'static str, u64>,
    pub(crate) net: NetCounters,
    histograms: BTreeMap<&'static str, Histogram>,
    timelines: BTreeMap<&'static str, Timeline>,
    /// Integer-sample log-scale histograms (see [`LogHistogram`]): the
    /// shared representation for hot-path latency/size recording, used
    /// by both the simulator and the real backend.
    records: BTreeMap<&'static str, LogHistogram>,
}

impl Metrics {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the named counter, creating it at zero if absent. The
    /// `net.*` counters are backed by dedicated fields (the per-message
    /// fast path) but remain addressable by name.
    pub fn incr(&mut self, name: &'static str, n: u64) {
        match name {
            "net.sent" => self.net.sent += n,
            "net.delivered" => self.net.delivered += n,
            "net.bytes" => self.net.bytes += n,
            "net.dropped" => self.net.dropped += n,
            "net.corrupted" => self.net.corrupted += n,
            "net.partitioned" => self.net.partitioned += n,
            "net.dropped_down" => self.net.dropped_down += n,
            "net.dropped_unknown" => self.net.dropped_unknown += n,
            _ => *self.counters.entry(name).or_insert(0) += n,
        }
    }

    /// Adds `n` to a static-label counter (used for per-message-kind
    /// accounting; avoids allocating a key per event).
    pub fn incr_label(&mut self, label: &'static str, n: u64) {
        *self.labels.entry(label).or_insert(0) += n;
    }

    /// Value of a static-label counter.
    pub fn label_count(&self, label: &str) -> u64 {
        self.labels.get(label).copied().unwrap_or(0)
    }

    /// All static-label counters whose label starts with `prefix`.
    pub fn labels_with_prefix(&self, prefix: &str) -> Vec<(&'static str, u64)> {
        self.labels
            .iter()
            .filter(|(l, _)| l.starts_with(prefix))
            .map(|(&l, &v)| (l, v))
            .collect()
    }

    /// Current value of the named counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        match name {
            "net.sent" => self.net.sent,
            "net.delivered" => self.net.delivered,
            "net.bytes" => self.net.bytes,
            "net.dropped" => self.net.dropped,
            "net.corrupted" => self.net.corrupted,
            "net.partitioned" => self.net.partitioned,
            "net.dropped_down" => self.net.dropped_down,
            "net.dropped_unknown" => self.net.dropped_unknown,
            _ => self.counters.get(name).copied().unwrap_or(0),
        }
    }

    /// All **nonzero** counters whose name starts with `prefix`, in name
    /// order (including the field-backed `net.*` counters).
    ///
    /// Zero-valued counters are skipped uniformly: a `net.*` field that was
    /// never touched and a dynamic counter that only ever received
    /// `incr(name, 0)` are equally invisible here (query them directly with
    /// [`Metrics::counter`] if the distinction matters).
    ///
    /// Both sources are already sorted — the map by key, the `net.*` fields
    /// listed in name order — so this is a single ordered merge with no
    /// re-sort. `incr` routes `net.*` names to the fields, so the two
    /// sequences never share a key.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        let net = [
            ("net.bytes", self.net.bytes),
            ("net.corrupted", self.net.corrupted),
            ("net.delivered", self.net.delivered),
            ("net.dropped", self.net.dropped),
            ("net.dropped_down", self.net.dropped_down),
            ("net.dropped_unknown", self.net.dropped_unknown),
            ("net.partitioned", self.net.partitioned),
            ("net.sent", self.net.sent),
        ];
        let mut dynamic = self
            .counters
            .iter()
            .filter(|&(k, &v)| v > 0 && k.starts_with(prefix))
            .map(|(&k, &v)| (k, v))
            .peekable();
        let mut fixed = net
            .into_iter()
            .filter(|&(k, v)| v > 0 && k.starts_with(prefix))
            .peekable();
        let mut out = Vec::new();
        loop {
            let take_dynamic = match (dynamic.peek(), fixed.peek()) {
                (Some(&(ka, _)), Some(&(kb, _))) => ka <= kb,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (k, v) = if take_dynamic {
                dynamic.next().unwrap()
            } else {
                fixed.next().unwrap()
            };
            out.push((k.to_owned(), v));
        }
        out
    }

    /// Records a sample in the named histogram.
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Mutable access (needed for quantile queries, which sort lazily).
    pub fn histogram_mut(&mut self, name: &str) -> Option<&mut Histogram> {
        self.histograms.get_mut(name)
    }

    /// Records an integer sample in the named [`LogHistogram`] — the
    /// fixed-bucket path for hot-path latencies and sizes. Unlike
    /// [`Metrics::observe`], memory stays bounded regardless of sample
    /// count, and recording never allocates after the first sample.
    pub fn record(&mut self, name: &'static str, value: u64) {
        self.records.entry(name).or_default().record(value);
    }

    /// The named log-scale histogram, if any samples were recorded.
    pub fn record_histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.records.get(name)
    }

    /// All log-scale histograms, in name order.
    pub fn record_histograms(&self) -> impl Iterator<Item = (&'static str, &LogHistogram)> {
        self.records.iter().map(|(&k, v)| (k, v))
    }

    /// Appends a point to the named timeline.
    pub fn timeline_push(&mut self, name: &'static str, t: SimTime, v: f64) {
        self.timelines.entry(name).or_default().push(t, v);
    }

    /// The named timeline, if any points were recorded.
    pub fn timeline(&self, name: &str) -> Option<&Timeline> {
        self.timelines.get(name)
    }

    /// An FNV-1a digest over every counter, label, net field, histogram
    /// sample and timeline point, in deterministic order. Two runs with the
    /// same seed must produce identical fingerprints — the determinism
    /// regression tests rely on this.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h = (h ^ u64::from(*b)).wrapping_mul(0x100000001b3);
            }
        };
        for (k, v) in &self.counters {
            eat(k.as_bytes());
            eat(&v.to_le_bytes());
        }
        for (k, v) in &self.labels {
            eat(k.as_bytes());
            eat(&v.to_le_bytes());
        }
        for v in [
            self.net.sent,
            self.net.delivered,
            self.net.bytes,
            self.net.dropped,
            self.net.corrupted,
            self.net.partitioned,
            self.net.dropped_down,
            self.net.dropped_unknown,
        ] {
            eat(&v.to_le_bytes());
        }
        for (k, hist) in &self.histograms {
            eat(k.as_bytes());
            for s in hist.samples() {
                eat(&s.to_bits().to_le_bytes());
            }
        }
        for (k, tl) in &self.timelines {
            eat(k.as_bytes());
            for &(t, v) in tl.points() {
                eat(&t.as_micros().to_le_bytes());
                eat(&v.to_bits().to_le_bytes());
            }
        }
        // Log-scale histograms fold last so a sink without any keeps the
        // exact fingerprint it had before they existed.
        for (k, lh) in &self.records {
            eat(k.as_bytes());
            for (upper, count) in lh.nonzero_buckets() {
                eat(&upper.to_le_bytes());
                eat(&count.to_le_bytes());
            }
            eat(&lh.sum().to_le_bytes());
        }
        h
    }

    /// A point-in-time, plain-data export of the sink — the machine-readable
    /// counterpart of the rendered experiment tables. Deterministic: entries
    /// are in name order and the embedded [`Metrics::fingerprint`] lets
    /// consumers pair a snapshot with a run.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut histograms: Vec<HistogramSummary> = self
            .histograms
            .iter()
            .map(|(&name, h)| {
                // `quantile` sorts lazily and needs `&mut`; summarize a
                // clone so snapshots work from shared references.
                let mut h = h.clone();
                HistogramSummary {
                    name: name.to_owned(),
                    count: h.count() as u64,
                    mean: h.mean(),
                    min: h.min(),
                    max: h.max(),
                    p50: h.quantile(0.50),
                    p90: h.quantile(0.90),
                    p99: h.quantile(0.99),
                }
            })
            .collect();
        // Log-scale histograms export through the same summary shape.
        // Empty ones are skipped — the zero-count guard that keeps every
        // summary's min/quantiles meaningful.
        histograms.extend(self.records.iter().filter(|(_, lh)| !lh.is_empty()).map(
            |(&name, lh)| HistogramSummary {
                name: name.to_owned(),
                count: lh.count(),
                mean: lh.mean(),
                min: lh.min().unwrap_or(0) as f64,
                max: lh.max().unwrap_or(0) as f64,
                p50: lh.quantile(0.50) as f64,
                p90: lh.quantile(0.90) as f64,
                p99: lh.quantile(0.99) as f64,
            },
        ));
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters: self.counters_with_prefix(""),
            labels: self
                .labels_with_prefix("")
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
            histograms,
            timelines: self
                .timelines
                .iter()
                .map(|(&name, tl)| {
                    let pts = tl.points();
                    TimelineSummary {
                        name: name.to_owned(),
                        points: pts.len() as u64,
                        first_us: pts.first().map(|&(t, _)| t.as_micros()).unwrap_or(0),
                        last_us: pts.last().map(|&(t, _)| t.as_micros()).unwrap_or(0),
                        total: pts.iter().map(|&(_, v)| v).sum(),
                    }
                })
                .collect(),
            fingerprint: self.fingerprint(),
        }
    }

    /// Packages the sink for [`crate::telemetry::Registry::publish`]:
    /// all nonzero counters (including the `net.*` fields) plus every
    /// non-empty log-scale histogram. This is how an actor thread's
    /// private sink becomes visible to a live `/metrics` scrape.
    pub fn export(&self) -> Export {
        Export {
            counters: self.counters_with_prefix(""),
            gauges: Vec::new(),
            histograms: self
                .records
                .iter()
                .filter(|(_, lh)| !lh.is_empty())
                .map(|(&k, lh)| (k.to_owned(), lh.clone()))
                .collect(),
        }
    }
}

/// Summary statistics of one histogram in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSummary {
    /// The histogram's metric name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Summary of one timeline in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct TimelineSummary {
    /// The timeline's metric name.
    pub name: String,
    /// Number of recorded points.
    pub points: u64,
    /// Time of the first point, µs (0 when empty).
    pub first_us: u64,
    /// Time of the last point, µs (0 when empty).
    pub last_us: u64,
    /// Sum of all point values.
    pub total: f64,
}

/// A serializable export of a [`Metrics`] sink (see [`Metrics::snapshot`]).
///
/// All collections are sorted by name; zero-valued counters are omitted
/// (matching [`Metrics::counters_with_prefix`]).
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// All nonzero counters, name order.
    pub counters: Vec<(String, u64)>,
    /// All per-message-label counters, label order.
    pub labels: Vec<(String, u64)>,
    /// Histogram summaries, name order.
    pub histograms: Vec<HistogramSummary>,
    /// Timeline summaries, name order.
    pub timelines: Vec<TimelineSummary>,
    /// The [`Metrics::fingerprint`] at snapshot time.
    pub fingerprint: u64,
}

/// Escapes `s` as the body of a JSON string literal (quotes not included).
/// Metric names are ASCII identifiers, but table cells pass through here
/// too, so the full control-character range is handled.
pub(crate) fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` as a JSON number. Histogram/timeline values are finite
/// by construction (NaN samples are rejected at quantile time); infinities
/// would not be valid JSON, so they are clamped to the largest finite value.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v > 0.0 {
        format!("{}", f64::MAX)
    } else {
        format!("{}", f64::MIN)
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot as a single JSON object (no external
    /// dependencies, hence hand-rolled). Key order is fixed, so equal
    /// snapshots render byte-identically — the artifact determinism tests
    /// rely on this.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"fingerprint\":");
        out.push_str(&self.fingerprint.to_string());
        out.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape_into(&mut out, k);
            out.push_str("\":");
            out.push_str(&v.to_string());
        }
        out.push_str("},\"labels\":{");
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape_into(&mut out, k);
            out.push_str("\":");
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            json_escape_into(&mut out, &h.name);
            out.push_str(&format!(
                "\",\"count\":{},\"mean\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.count,
                json_f64(h.mean),
                json_f64(h.min),
                json_f64(h.max),
                json_f64(h.p50),
                json_f64(h.p90),
                json_f64(h.p99),
            ));
        }
        out.push_str("],\"timelines\":[");
        for (i, t) in self.timelines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            json_escape_into(&mut out, &t.name);
            out.push_str(&format!(
                "\",\"points\":{},\"first_us\":{},\"last_us\":{},\"total\":{}}}",
                t.points,
                t.first_us,
                t.last_us,
                json_f64(t.total),
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn counters_accumulate_and_scan_by_prefix() {
        let mut m = Metrics::new();
        m.incr("net.sent", 2);
        m.incr("net.sent", 3);
        m.incr("net.dropped", 1);
        m.incr("app.commit", 9);
        assert_eq!(m.counter("net.sent"), 5);
        assert_eq!(m.counter("missing"), 0);
        let net = m.counters_with_prefix("net.");
        assert_eq!(net, vec![("net.dropped".into(), 1), ("net.sent".into(), 5)]);
    }

    #[test]
    fn histogram_quantiles_on_known_data() {
        let mut h = Histogram::default();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(0.5), 3.0);
        assert_eq!(h.quantile(1.0), 5.0);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let mut h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn timeline_binning_sums_and_pads() {
        let mut t = Timeline::default();
        t.push(SimTime::from_millis(1), 1.0);
        t.push(SimTime::from_millis(2), 1.0);
        t.push(SimTime::from_millis(25), 4.0);
        let bins = t.binned(
            SimTime::ZERO,
            SimTime::from_millis(30),
            SimDuration::from_millis(10),
        );
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[0], (SimTime::ZERO, 2.0));
        assert_eq!(bins[1], (SimTime::from_millis(10), 0.0));
        assert_eq!(bins[2], (SimTime::from_millis(20), 4.0));
    }

    #[test]
    fn longest_gap_finds_the_interruption_window() {
        let mut t = Timeline::default();
        t.push(SimTime::from_millis(5), 1.0);
        // bins 1..=3 empty
        t.push(SimTime::from_millis(45), 1.0);
        t.push(SimTime::from_millis(55), 1.0);
        let gap = t.longest_gap_bins(
            SimTime::ZERO,
            SimTime::from_millis(60),
            SimDuration::from_millis(10),
        );
        assert_eq!(gap, 3);
    }

    #[test]
    fn zero_counters_are_filtered_uniformly_by_prefix_scan() {
        let mut m = Metrics::new();
        // A dynamic counter that only ever saw +0 and a never-touched
        // field-backed counter must both be invisible to the scan.
        m.incr("app.zero", 0);
        m.incr("app.commit", 9);
        m.incr("net.sent", 0);
        m.incr("net.dropped", 1);
        assert_eq!(
            m.counters_with_prefix(""),
            vec![("app.commit".into(), 9), ("net.dropped".into(), 1)]
        );
        // Direct lookups still see the zeros as zeros.
        assert_eq!(m.counter("app.zero"), 0);
        assert_eq!(m.counter("net.sent"), 0);
    }

    #[test]
    fn inverted_binning_window_yields_no_bins() {
        let mut t = Timeline::default();
        t.push(SimTime::from_millis(5), 1.0);
        let bin = SimDuration::from_millis(10);
        let (start, end) = (SimTime::from_millis(50), SimTime::from_millis(10));
        assert!(t.binned(start, end, bin).is_empty());
        assert_eq!(t.longest_gap_bins(start, end, bin), 0);
        // Degenerate zero-width window too.
        assert!(t.binned(start, start, bin).is_empty());
        assert_eq!(t.longest_gap_bins(start, start, bin), 0);
    }

    #[test]
    fn labels_scan_by_prefix_in_order() {
        let mut m = Metrics::new();
        m.incr_label("paxos.accept", 2);
        m.incr_label("paxos.prepare", 1);
        m.incr_label("rsmr.request", 5);
        assert_eq!(
            m.labels_with_prefix("paxos."),
            vec![("paxos.accept", 2), ("paxos.prepare", 1)]
        );
        assert_eq!(m.labels_with_prefix("raft."), vec![]);
        assert_eq!(m.labels_with_prefix("").len(), 3);
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_source() {
        let base = || {
            let mut m = Metrics::new();
            m.incr("app.commit", 1);
            m.incr_label("paxos.accept", 1);
            m.incr("net.sent", 1);
            m.observe("lat", 3.0);
            m.timeline_push("tl", SimTime::from_millis(1), 1.0);
            m
        };
        let reference = base().fingerprint();
        assert_eq!(base().fingerprint(), reference, "fingerprint is stable");

        let mut m = base();
        m.incr("app.commit", 1);
        assert_ne!(m.fingerprint(), reference, "counter change must show");
        let mut m = base();
        m.incr_label("paxos.accept", 1);
        assert_ne!(m.fingerprint(), reference, "label change must show");
        let mut m = base();
        m.incr("net.sent", 1);
        assert_ne!(m.fingerprint(), reference, "net field change must show");
        let mut m = base();
        m.observe("lat", 4.0);
        assert_ne!(m.fingerprint(), reference, "histogram change must show");
        let mut m = base();
        m.timeline_push("tl", SimTime::from_millis(2), 1.0);
        assert_ne!(m.fingerprint(), reference, "timeline change must show");
    }

    #[test]
    fn snapshot_exports_everything_and_renders_stable_json() {
        let mut m = Metrics::new();
        m.incr("rsmr.applied", 3);
        m.incr("net.sent", 2);
        m.incr_label("paxos.accept", 4);
        for v in [1.0, 2.0, 3.0] {
            m.observe("lat_us", v);
        }
        m.timeline_push("rsmr.commits", SimTime::from_millis(5), 1.0);
        m.timeline_push("rsmr.commits", SimTime::from_millis(9), 2.0);

        let snap = m.snapshot();
        assert_eq!(
            snap.counters,
            vec![("net.sent".into(), 2), ("rsmr.applied".into(), 3)]
        );
        assert_eq!(snap.labels, vec![("paxos.accept".into(), 4)]);
        assert_eq!(snap.histograms.len(), 1);
        let h = &snap.histograms[0];
        assert_eq!((h.count, h.mean, h.min, h.max), (3, 2.0, 1.0, 3.0));
        assert_eq!(snap.timelines.len(), 1);
        let t = &snap.timelines[0];
        assert_eq!(
            (t.points, t.first_us, t.last_us, t.total),
            (2, 5000, 9000, 3.0)
        );
        assert_eq!(snap.fingerprint, m.fingerprint());

        let json = snap.to_json();
        assert_eq!(json, m.snapshot().to_json(), "rendering is deterministic");
        assert!(json.starts_with("{\"fingerprint\":"));
        assert!(json.contains("\"rsmr.applied\":3"));
        assert!(json.contains("\"p50\":2"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn record_histograms_flow_through_fingerprint_snapshot_and_export() {
        let mut m = Metrics::new();
        m.incr("rsmr.applied", 1);
        m.observe("lat_us", 2.0);
        let before = m.fingerprint();
        m.record("paxos.batch_size", 0); // a zero-valued sample still counts
        assert_ne!(m.fingerprint(), before, "record change must show");
        m.record("paxos.batch_size", 64);

        let snap = m.snapshot();
        let names: Vec<&str> = snap.histograms.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["lat_us", "paxos.batch_size"],
            "merged in name order"
        );
        let h = &snap.histograms[1];
        assert_eq!((h.count, h.min, h.max, h.p90), (2, 0.0, 64.0, 64.0));

        let export = m.export();
        assert_eq!(export.counters, vec![("rsmr.applied".into(), 1)]);
        assert_eq!(export.histograms.len(), 1);
        assert_eq!(export.histograms[0].0, "paxos.batch_size");
        assert_eq!(export.histograms[0].1.count(), 2);
    }

    #[test]
    fn json_escaping_handles_quotes_and_control_chars() {
        let mut out = String::new();
        json_escape_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn out_of_range_points_are_ignored_by_binning() {
        let mut t = Timeline::default();
        t.push(SimTime::from_millis(100), 7.0);
        let bins = t.binned(
            SimTime::ZERO,
            SimTime::from_millis(50),
            SimDuration::from_millis(10),
        );
        assert!(bins.iter().all(|&(_, v)| v == 0.0));
    }
}
