//! Simulated stable storage: a per-node key/value blob store that survives
//! crashes and restarts.

use std::collections::{BTreeMap, BTreeSet};

/// Per-node durable storage.
///
/// Protocols persist their recovery state here (promised ballots, accepted
/// entries, snapshots, …). When a node crashes the simulator drops the actor
/// but keeps its `StableStore`; the restart factory rebuilds the actor from
/// it, exactly as a real process recovers from disk.
///
/// ```
/// use simnet::StableStore;
/// let mut s = StableStore::default();
/// s.put_u64("promised", 7);
/// assert_eq!(s.get_u64("promised"), Some(7));
/// ```
#[derive(Clone, Debug, Default)]
pub struct StableStore {
    map: BTreeMap<String, Vec<u8>>,
    /// Keys mutated since the last [`StableStore::take_dirty`]. `None` (the
    /// default) disables journaling entirely, so the simulator pays nothing
    /// for a feature only the real-runtime write-through path uses.
    dirty: Option<BTreeSet<String>>,
}

impl StableStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables the dirty-key journal: from now on every [`StableStore::put`]
    /// and [`StableStore::remove`] records the touched key, and
    /// [`StableStore::take_dirty`] drains the accumulated set.
    ///
    /// The real runtime (see [`crate::runtime`]) uses this to flush only
    /// mutated keys to its [`crate::transport::StorageBackend`] after each
    /// actor callback. The simulator never enables it, so simulated runs are
    /// byte-for-byte unaffected.
    pub fn enable_journal(&mut self) {
        if self.dirty.is_none() {
            self.dirty = Some(BTreeSet::new());
        }
    }

    /// Drains and returns the keys mutated since the previous call, in
    /// lexicographic order. Returns an empty vector when journaling is
    /// disabled (see [`StableStore::enable_journal`]).
    pub fn take_dirty(&mut self) -> Vec<String> {
        match self.dirty.as_mut() {
            Some(set) => std::mem::take(set).into_iter().collect(),
            None => Vec::new(),
        }
    }

    fn mark_dirty(&mut self, key: &str) {
        if let Some(set) = self.dirty.as_mut() {
            if !set.contains(key) {
                set.insert(key.to_owned());
            }
        }
    }

    /// Stores raw bytes under `key`, replacing any previous value.
    pub fn put(&mut self, key: &str, value: Vec<u8>) {
        self.mark_dirty(key);
        self.map.insert(key.to_owned(), value);
    }

    /// Reads the bytes stored under `key`.
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        self.map.get(key).map(Vec::as_slice)
    }

    /// Removes `key`, returning its previous value.
    pub fn remove(&mut self, key: &str) -> Option<Vec<u8>> {
        self.mark_dirty(key);
        self.map.remove(key)
    }

    /// Stores a `u64` under `key` (little-endian).
    pub fn put_u64(&mut self, key: &str, value: u64) {
        self.put(key, value.to_le_bytes().to_vec());
    }

    /// Reads a `u64` stored with [`StableStore::put_u64`]. Returns `None` if
    /// the key is missing or malformed.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        let bytes = self.get(key)?;
        let arr: [u8; 8] = bytes.try_into().ok()?;
        Some(u64::from_le_bytes(arr))
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total bytes stored across all values (a proxy for disk footprint).
    pub fn byte_size(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Iterates over keys with the given prefix, in lexicographic order.
    pub fn keys_with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.map
            .range(prefix.to_owned()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.as_str())
    }

    /// Extracts the sub-store under `prefix` as a standalone store whose
    /// keys have the prefix stripped. Used to recover one group's actor
    /// from a node that multiplexes several groups over a single store
    /// (each group writes under its own scope — see [`ScopedStore`]).
    pub fn subtree(&self, prefix: &str) -> StableStore {
        StableStore {
            map: self
                .map
                .range(prefix.to_owned()..)
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(k, v)| (k[prefix.len()..].to_owned(), v.clone()))
                .collect(),
            dirty: None,
        }
    }

    /// Iterates over every `(key, value)` pair in lexicographic key order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &[u8])> + '_ {
        self.map.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }
}

/// A prefix-scoped view of a [`StableStore`].
///
/// [`crate::Context::storage`] hands actors one of these instead of the raw
/// store. With an empty scope (the default, single-group case) it is a
/// zero-cost passthrough; under a multi-group multiplexer every key is
/// transparently namespaced by the group's scope, so co-hosted groups can
/// never clobber each other's recovery state.
pub struct ScopedStore<'a> {
    store: &'a mut StableStore,
    scope: &'a str,
}

impl<'a> ScopedStore<'a> {
    pub(crate) fn new(store: &'a mut StableStore, scope: &'a str) -> Self {
        ScopedStore { store, scope }
    }

    fn full<'k>(&self, key: &'k str) -> std::borrow::Cow<'k, str> {
        if self.scope.is_empty() {
            std::borrow::Cow::Borrowed(key)
        } else {
            std::borrow::Cow::Owned(format!("{}{}", self.scope, key))
        }
    }

    /// Stores raw bytes under `key`, replacing any previous value.
    pub fn put(&mut self, key: &str, value: Vec<u8>) {
        let full = self.full(key);
        self.store.put(&full, value);
    }

    /// Reads the bytes stored under `key`.
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        match self.full(key) {
            std::borrow::Cow::Borrowed(k) => self.store.get(k),
            std::borrow::Cow::Owned(k) => self.store.get(&k),
        }
    }

    /// Removes `key`, returning its previous value.
    pub fn remove(&mut self, key: &str) -> Option<Vec<u8>> {
        let full = self.full(key);
        self.store.remove(&full)
    }

    /// Stores a `u64` under `key` (little-endian).
    pub fn put_u64(&mut self, key: &str, value: u64) {
        self.put(key, value.to_le_bytes().to_vec());
    }

    /// Reads a `u64` stored with [`ScopedStore::put_u64`].
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        let bytes = self.get(key)?;
        let arr: [u8; 8] = bytes.try_into().ok()?;
        Some(u64::from_le_bytes(arr))
    }

    /// Collects the keys under `prefix` (scope-relative, scope stripped),
    /// in lexicographic order. Returns owned strings because the scoped
    /// prefix is materialized internally.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        let full = self.full(prefix);
        let scope_len = self.scope.len();
        self.store
            .keys_with_prefix(&full)
            .map(|k| k[scope_len..].to_owned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove_round_trip() {
        let mut s = StableStore::new();
        assert!(s.is_empty());
        s.put("a", vec![1, 2, 3]);
        assert_eq!(s.get("a"), Some(&[1u8, 2, 3][..]));
        assert_eq!(s.len(), 1);
        assert_eq!(s.byte_size(), 3);
        assert_eq!(s.remove("a"), Some(vec![1, 2, 3]));
        assert!(s.get("a").is_none());
    }

    #[test]
    fn u64_helpers_reject_malformed_values() {
        let mut s = StableStore::new();
        s.put("short", vec![1, 2]);
        assert_eq!(s.get_u64("short"), None);
        assert_eq!(s.get_u64("missing"), None);
        s.put_u64("x", u64::MAX);
        assert_eq!(s.get_u64("x"), Some(u64::MAX));
    }

    #[test]
    fn scoped_view_namespaces_every_operation() {
        let mut s = StableStore::new();
        {
            let mut g0 = ScopedStore::new(&mut s, "g0/");
            g0.put("base", vec![1]);
            g0.put_u64("term", 7);
            assert_eq!(g0.get("base"), Some(&[1u8][..]));
            assert_eq!(g0.get_u64("term"), Some(7));
            assert_eq!(g0.keys_with_prefix(""), vec!["base", "term"]);
        }
        {
            let mut g1 = ScopedStore::new(&mut s, "g1/");
            assert_eq!(g1.get("base"), None, "scopes must not leak");
            g1.put("base", vec![2]);
            assert_eq!(g1.remove("base"), Some(vec![2]));
        }
        // The raw store sees fully-qualified keys.
        assert_eq!(s.get("g0/base"), Some(&[1u8][..]));
        // An empty scope is a passthrough.
        let mut root = ScopedStore::new(&mut s, "");
        assert_eq!(root.get("g0/base"), Some(&[1u8][..]));
        assert_eq!(root.keys_with_prefix("g0/"), vec!["g0/base", "g0/term"]);
        root.put("top", vec![9]);
        assert_eq!(s.get("top"), Some(&[9u8][..]));
    }

    #[test]
    fn subtree_strips_the_scope_and_copies_values() {
        let mut s = StableStore::new();
        s.put("g0/base", vec![1, 2]);
        s.put("g0/px/0001", vec![3]);
        s.put("g1/base", vec![4]);
        let sub = s.subtree("g0/");
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.get("base"), Some(&[1u8, 2][..]));
        assert_eq!(sub.get("px/0001"), Some(&[3u8][..]));
        assert!(sub.get("g1/base").is_none());
        // The original is untouched.
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn journal_records_puts_and_removes_only_when_enabled() {
        let mut s = StableStore::new();
        s.put("before", vec![1]);
        assert!(s.take_dirty().is_empty(), "journal off by default");
        s.enable_journal();
        s.put("a", vec![1]);
        s.put_u64("b", 2);
        s.remove("before");
        s.remove("missing"); // removals of absent keys still journal
        assert_eq!(s.take_dirty(), vec!["a", "b", "before", "missing"]);
        assert!(s.take_dirty().is_empty(), "take_dirty drains");
        s.put("a", vec![9]);
        assert_eq!(s.take_dirty(), vec!["a"]);
        // Scoped views journal their fully-qualified keys.
        ScopedStore::new(&mut s, "g0/").put("base", vec![1]);
        assert_eq!(s.take_dirty(), vec!["g0/base"]);
    }

    #[test]
    fn prefix_scan_is_ordered_and_bounded() {
        let mut s = StableStore::new();
        s.put("log/000001", vec![]);
        s.put("log/000003", vec![]);
        s.put("log/000002", vec![]);
        s.put("meta", vec![]);
        let keys: Vec<_> = s.keys_with_prefix("log/").collect();
        assert_eq!(keys, vec!["log/000001", "log/000002", "log/000003"]);
        assert_eq!(s.keys_with_prefix("zzz").count(), 0);
    }
}
