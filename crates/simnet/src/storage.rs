//! Simulated stable storage: a per-node key/value blob store that survives
//! crashes and restarts.

use std::collections::BTreeMap;

/// Per-node durable storage.
///
/// Protocols persist their recovery state here (promised ballots, accepted
/// entries, snapshots, …). When a node crashes the simulator drops the actor
/// but keeps its `StableStore`; the restart factory rebuilds the actor from
/// it, exactly as a real process recovers from disk.
///
/// ```
/// use simnet::StableStore;
/// let mut s = StableStore::default();
/// s.put_u64("promised", 7);
/// assert_eq!(s.get_u64("promised"), Some(7));
/// ```
#[derive(Clone, Debug, Default)]
pub struct StableStore {
    map: BTreeMap<String, Vec<u8>>,
}

impl StableStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores raw bytes under `key`, replacing any previous value.
    pub fn put(&mut self, key: &str, value: Vec<u8>) {
        self.map.insert(key.to_owned(), value);
    }

    /// Reads the bytes stored under `key`.
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        self.map.get(key).map(Vec::as_slice)
    }

    /// Removes `key`, returning its previous value.
    pub fn remove(&mut self, key: &str) -> Option<Vec<u8>> {
        self.map.remove(key)
    }

    /// Stores a `u64` under `key` (little-endian).
    pub fn put_u64(&mut self, key: &str, value: u64) {
        self.put(key, value.to_le_bytes().to_vec());
    }

    /// Reads a `u64` stored with [`StableStore::put_u64`]. Returns `None` if
    /// the key is missing or malformed.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        let bytes = self.get(key)?;
        let arr: [u8; 8] = bytes.try_into().ok()?;
        Some(u64::from_le_bytes(arr))
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total bytes stored across all values (a proxy for disk footprint).
    pub fn byte_size(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Iterates over keys with the given prefix, in lexicographic order.
    pub fn keys_with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.map
            .range(prefix.to_owned()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove_round_trip() {
        let mut s = StableStore::new();
        assert!(s.is_empty());
        s.put("a", vec![1, 2, 3]);
        assert_eq!(s.get("a"), Some(&[1u8, 2, 3][..]));
        assert_eq!(s.len(), 1);
        assert_eq!(s.byte_size(), 3);
        assert_eq!(s.remove("a"), Some(vec![1, 2, 3]));
        assert!(s.get("a").is_none());
    }

    #[test]
    fn u64_helpers_reject_malformed_values() {
        let mut s = StableStore::new();
        s.put("short", vec![1, 2]);
        assert_eq!(s.get_u64("short"), None);
        assert_eq!(s.get_u64("missing"), None);
        s.put_u64("x", u64::MAX);
        assert_eq!(s.get_u64("x"), Some(u64::MAX));
    }

    #[test]
    fn prefix_scan_is_ordered_and_bounded() {
        let mut s = StableStore::new();
        s.put("log/000001", vec![]);
        s.put("log/000003", vec![]);
        s.put("log/000002", vec![]);
        s.put("meta", vec![]);
        let keys: Vec<_> = s.keys_with_prefix("log/").collect();
        assert_eq!(keys, vec!["log/000001", "log/000002", "log/000003"]);
        assert_eq!(s.keys_with_prefix("zzz").count(), 0);
    }
}
