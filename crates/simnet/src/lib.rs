//! # simnet — deterministic discrete-event simulation for distributed protocols
//!
//! `simnet` is the substrate every protocol in this workspace runs on. It
//! provides:
//!
//! * a **virtual clock** ([`SimTime`], [`SimDuration`]) with microsecond
//!   granularity;
//! * an **actor model** ([`Actor`], [`Context`]): nodes receive messages and
//!   timer callbacks, and emit messages/timers through their context;
//! * a **network model** ([`NetConfig`], [`LatencyModel`]): per-link latency
//!   distributions, probabilistic loss and duplication, and explicit
//!   partitions;
//! * **fault injection**: crash and restart of nodes, with a per-node
//!   [`StableStore`] that survives restarts (simulated stable storage), and
//!   declarative seeded fault schedules ([`FaultPlan`], [`ChaosGen`],
//!   [`ChaosDriver`]) for replayable chaos runs;
//! * **observability**: counters, histograms and timelines ([`Metrics`]), a
//!   bounded textual [`Trace`], and a typed event stream ([`SimEvent`],
//!   [`observe::Observer`]) covering transport actions and protocol-emitted
//!   [`DomainEvent`]s.
//!
//! Everything is single-threaded and seeded, so a run is a pure function of
//! `(actors, seed, script)` — property tests and experiments are exactly
//! reproducible.
//!
//! The same actors also run **for real**: the [`transport`] module defines
//! the narrow [`Clock`]/[`Transport`]/[`StorageBackend`] boundary (wall
//! clocks, length-prefixed TCP framing with reconnect, file-backed
//! [`StableStore`]), and [`NodeRuntime`] drives an unmodified actor on
//! those backends with the same callback/effect discipline as [`Sim`].
//! Develop and model-check under the simulator; deploy the identical type.
//!
//! ## Example
//!
//! ```
//! use simnet::{Actor, Context, Message, NetConfig, NodeId, Sim, SimDuration, Timer};
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u32);
//! impl Message for Ping {
//!     fn label(&self) -> &'static str { "ping" }
//! }
//!
//! struct Echo;
//! impl Actor for Echo {
//!     type Msg = Ping;
//!     fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, msg: Ping) {
//!         if msg.0 < 3 {
//!             ctx.send(from, Ping(msg.0 + 1));
//!         }
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Context<'_, Ping>, _timer: Timer) {}
//! }
//!
//! let mut sim = Sim::new(42, NetConfig::lan());
//! let a = sim.add_node(Echo);
//! let b = sim.add_node(Echo);
//! sim.inject(a, b, Ping(0));
//! sim.run_until_quiet(SimDuration::from_secs(1));
//! assert!(sim.metrics().counter("net.delivered") >= 3);
//! ```

mod actor;
pub mod backoff;
pub mod chaos;
mod event;
mod metrics;
mod net;
pub mod observe;
pub mod rng;
pub mod runtime;
pub mod shard;
mod sim;
mod storage;
pub mod telemetry;
mod time;
mod trace;
pub mod transport;
pub mod wire;

pub use actor::{Actor, Context, Message, Timer, TimerId};
pub use backoff::RetryBackoff;
pub use chaos::{
    link_delay_permutation, mutate_plan, ChaosDriver, ChaosGen, CoverageMap, DiskFault, FaultEvent,
    FaultKind, FaultPlan, FaultTarget, LifecycleCoverage, PlanLineage,
};
pub use metrics::{Histogram, HistogramSummary, Metrics, MetricsSnapshot, Timeline};
pub use net::{LatencyModel, NetConfig};
pub use observe::{DomainEvent, DropReason, EventDigest, EventLog, Observer, SimEvent, Spans};
pub use rng::SimRng;
pub use runtime::{NodeRuntime, RuntimeConfig};
pub use shard::{GroupId, Grouped, MultiGroup};
pub use sim::{NodeId, Sim};
pub use storage::{ScopedStore, StableStore};
pub use telemetry::{
    render_prometheus, Counter, Export, Gauge, HistogramHandle, LogHistogram, Registry,
};
pub use time::{SimDuration, SimTime};
pub use trace::Trace;
pub use transport::{
    ChannelHub, ChannelTransport, Clock, FaultyStorage, FaultyTransport, FileStorage, FrameBuffer,
    FrameError, ManualClock, MemStorage, NullTransport, StorageBackend, TcpConfig, TcpTransport,
    Transport, TransportEvent, WallClock,
};
