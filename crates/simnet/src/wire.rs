//! A tiny deterministic binary framing layer.
//!
//! Protocol crates persist recovery state and ship snapshots as byte blobs;
//! this module provides the encoding. It is deliberately minimal — fixed
//! little-endian integers and length-prefixed sequences — so encoded bytes
//! are stable across runs and easy to reason about in tests.
//!
//! ```
//! use simnet::wire::{self, Wire};
//! let mut buf = Vec::new();
//! (7u64, "hello".to_owned()).encode(&mut buf);
//! let mut slice = buf.as_slice();
//! let decoded = <(u64, String)>::decode(&mut slice).unwrap();
//! assert_eq!(decoded, (7, "hello".to_owned()));
//! assert!(slice.is_empty());
//! ```

use crate::sim::NodeId;

/// CRC-32C (Castagnoli, polynomial `0x1EDC6F41`): the checksum guarding
/// every byte boundary in the workspace — TCP frames, WAL records and
/// snapshot records all carry one. Software slicing-by-8 (the eight
/// tables are built at compile time), reflected, initial value and
/// final XOR of `!0`, matching the SSE4.2 `crc32` instruction and
/// iSCSI/ext4. Every frame is checksummed twice (once per side), so
/// this sits on the transport hot path; slicing-by-8 processes eight
/// bytes per step instead of one, which keeps the check well under a
/// cycle per byte.
pub mod crc32c {
    const fn build_tables() -> [[u32; 256]; 8] {
        // Reflected polynomial of 0x1EDC6F41.
        const POLY: u32 = 0x82F6_3B78;
        let mut tables = [[0u32; 256]; 8];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            tables[0][i] = crc;
            i += 1;
        }
        // tables[k][b] is the CRC of byte b followed by k zero bytes:
        // each level feeds the previous one through one more byte step.
        let mut k = 1;
        while k < 8 {
            let mut i = 0;
            while i < 256 {
                let prev = tables[k - 1][i];
                tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
                i += 1;
            }
            k += 1;
        }
        tables
    }

    static TABLES: [[u32; 256]; 8] = build_tables();

    /// Continues a checksum over `bytes` from a previous [`checksum`]
    /// value (pass the previous result directly; the pre/post
    /// conditioning is handled internally).
    pub fn extend(crc: u32, bytes: &[u8]) -> u32 {
        let mut crc = !crc;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
            let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        !crc
    }

    /// The CRC-32C of `bytes`.
    pub fn checksum(bytes: &[u8]) -> u32 {
        extend(0, bytes)
    }
}

/// Types that can be framed to and from bytes.
///
/// `decode` consumes from the front of the slice and returns `None` on
/// malformed or truncated input (never panics).
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes a value from the front of `buf`, advancing it past the
    /// consumed bytes. Returns `None` on malformed input.
    fn decode(buf: &mut &[u8]) -> Option<Self>;

    /// The exact number of bytes [`Wire::encode`] would append, computed
    /// without encoding. The default round-trips through a scratch buffer;
    /// implementations on the sizing hot path (message cost models,
    /// snapshot accounting) override it with arithmetic.
    fn encoded_size(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }
}

/// Encodes a value into a fresh buffer.
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    buf
}

/// Decodes a value from a buffer, requiring that every byte is consumed.
pub fn from_bytes<T: Wire>(mut bytes: &[u8]) -> Option<T> {
    let v = T::decode(&mut bytes)?;
    if bytes.is_empty() {
        Some(v)
    } else {
        None
    }
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if buf.len() < n {
        return None;
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Some(head)
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(buf: &mut &[u8]) -> Option<Self> {
                let bytes = take(buf, std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(bytes.try_into().ok()?))
            }
            fn encoded_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i64);

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn encoded_size(&self) -> usize {
        1
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Wire for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }
    fn encoded_size(&self) -> usize {
        8
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        usize::try_from(u64::decode(buf)?).ok()
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.len().encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn encoded_size(&self) -> usize {
        8 + self.len()
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let len = usize::decode(buf)?;
        let bytes = take(buf, len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.len().encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn encoded_size(&self) -> usize {
        8 + self.iter().map(Wire::encoded_size).sum::<usize>()
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let len = usize::decode(buf)?;
        // Guard against hostile lengths: cap the preallocation.
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Some(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(None),
            1 => Some(Some(T::decode(buf)?)),
            _ => None,
        }
    }
    fn encoded_size(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::encoded_size)
    }
}

impl<T: Wire> Wire for std::sync::Arc<T> {
    // Transparent: `Arc<T>` encodes exactly like `T`, so shared protocol
    // payloads round-trip without a copy on encode.
    fn encode(&self, buf: &mut Vec<u8>) {
        (**self).encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        T::decode(buf).map(std::sync::Arc::new)
    }
    fn encoded_size(&self) -> usize {
        (**self).encoded_size()
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?))
    }
    fn encoded_size(&self) -> usize {
        self.0.encoded_size() + self.1.encoded_size()
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
    fn encoded_size(&self) -> usize {
        self.0.encoded_size() + self.1.encoded_size() + self.2.encoded_size()
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
        self.3.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((
            A::decode(buf)?,
            B::decode(buf)?,
            C::decode(buf)?,
            D::decode(buf)?,
        ))
    }
    fn encoded_size(&self) -> usize {
        self.0.encoded_size()
            + self.1.encoded_size()
            + self.2.encoded_size()
            + self.3.encoded_size()
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire, E: Wire> Wire for (A, B, C, D, E) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
        self.3.encode(buf);
        self.4.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((
            A::decode(buf)?,
            B::decode(buf)?,
            C::decode(buf)?,
            D::decode(buf)?,
            E::decode(buf)?,
        ))
    }
    fn encoded_size(&self) -> usize {
        self.0.encoded_size()
            + self.1.encoded_size()
            + self.2.encoded_size()
            + self.3.encoded_size()
            + self.4.encoded_size()
    }
}

impl Wire for NodeId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(NodeId(u64::decode(buf)?))
    }
    fn encoded_size(&self) -> usize {
        8
    }
}

impl Wire for crate::time::SimTime {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_micros().encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(crate::time::SimTime::from_micros(u64::decode(buf)?))
    }
    fn encoded_size(&self) -> usize {
        8
    }
}

impl Wire for crate::time::SimDuration {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_micros().encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(crate::time::SimDuration::from_micros(u64::decode(buf)?))
    }
    fn encoded_size(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        assert_eq!(from_bytes::<T>(&bytes), Some(v));
    }

    #[test]
    fn crc32c_matches_known_vectors() {
        // The iSCSI/ext4 check value — pins the polynomial, reflection
        // and conditioning against the published CRC-32C definition.
        assert_eq!(crc32c::checksum(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c::checksum(b""), 0);
        assert_eq!(crc32c::checksum(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c::checksum(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn crc32c_extend_composes_like_one_pass() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let (a, b) = data.split_at(split);
            assert_eq!(
                crc32c::extend(crc32c::checksum(a), b),
                crc32c::checksum(data),
                "split at {split}"
            );
        }
    }

    #[test]
    fn crc32c_detects_every_single_bit_flip() {
        let mut rng = crate::SimRng::seed_from_u64(0xC32C);
        let data: Vec<u8> = (0..64).map(|_| rng.gen_range(0..u64::MAX) as u8).collect();
        let clean = crc32c::checksum(&data);
        let mut mangled = data.clone();
        for byte in 0..data.len() {
            for bit in 0..8 {
                mangled[byte] ^= 1 << bit;
                assert_ne!(crc32c::checksum(&mangled), clean, "missed {byte}:{bit}");
                mangled[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(u16::MAX);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(i64::MIN);
        round_trip(true);
        round_trip(false);
        round_trip(usize::MAX);
        round_trip(crate::time::SimTime::from_micros(123_456_789));
        round_trip(crate::time::SimDuration::from_millis(42));
    }

    #[test]
    fn composites_round_trip() {
        round_trip(String::from("héllo, wörld"));
        round_trip(String::new());
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(Some(42u32));
        round_trip(Option::<u32>::None);
        round_trip((7u64, String::from("x")));
        round_trip((1u8, 2u16, vec![NodeId(3)]));
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = to_bytes(&12345u64);
        assert_eq!(from_bytes::<u64>(&bytes[..7]), None);
        let s = to_bytes(&String::from("abcdef"));
        assert_eq!(from_bytes::<String>(&s[..s.len() - 1]), None);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = to_bytes(&1u64);
        bytes.push(0xFF);
        assert_eq!(from_bytes::<u64>(&bytes), None);
    }

    #[test]
    fn invalid_discriminants_are_rejected() {
        assert_eq!(from_bytes::<bool>(&[2]), None);
        assert_eq!(from_bytes::<Option<u8>>(&[9, 1]), None);
    }

    #[test]
    fn hostile_length_does_not_allocate_the_moon() {
        let mut bytes = Vec::new();
        (u64::MAX).encode(&mut bytes); // declared length
        assert_eq!(from_bytes::<Vec<u64>>(&bytes), None);
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut bytes = Vec::new();
        2usize.encode(&mut bytes);
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(from_bytes::<String>(&bytes), None);
    }

    /// The composite shape the fuzzers mangle — nested enough to exercise
    /// every decoder path (ints, bool/option discriminants, length
    /// prefixes, UTF-8, tuples).
    type FuzzTarget = (u64, String, Vec<(NodeId, Option<u32>)>, bool);

    fn fuzz_corpus(rng: &mut crate::SimRng) -> Vec<u8> {
        let n = rng.gen_range(0..4usize);
        let v: FuzzTarget = (
            rng.gen_range(0..u64::MAX),
            "abcdefgh"[..rng.gen_range(0..8usize)].to_owned(),
            (0..n)
                .map(|_| {
                    let opt = rng.gen_bool(0.5).then(|| rng.gen_range(0..u32::MAX));
                    (NodeId(rng.gen_range(0u64..64)), opt)
                })
                .collect(),
            rng.gen_bool(0.5),
        );
        to_bytes(&v)
    }

    /// Seeded fuzz: random truncations of valid encodings must decode to
    /// `None`, never panic, and never consume past the slice.
    #[test]
    fn fuzz_truncations_never_panic() {
        let mut rng = crate::SimRng::seed_from_u64(0xF0221);
        for _ in 0..200 {
            let bytes = fuzz_corpus(&mut rng);
            for cut in 0..bytes.len() {
                // A strict prefix can never satisfy `from_bytes` (the
                // outer tuple consumes everything or fails).
                assert_eq!(from_bytes::<FuzzTarget>(&bytes[..cut]), None);
            }
        }
    }

    /// Seeded fuzz: single-bit flips either still decode (flipped a value
    /// byte) or cleanly return `None` — decoding must never panic or
    /// over-allocate.
    #[test]
    fn fuzz_bit_flips_never_panic() {
        let mut rng = crate::SimRng::seed_from_u64(0xF0222);
        for _ in 0..200 {
            let mut bytes = fuzz_corpus(&mut rng);
            let byte = rng.gen_range(0..bytes.len());
            let bit = rng.gen_range(0..8u32);
            bytes[byte] ^= 1 << bit;
            let _ = from_bytes::<FuzzTarget>(&bytes);
        }
    }

    /// Seeded fuzz: trailing garbage after a valid encoding is always
    /// rejected by `from_bytes` (full-consumption contract).
    #[test]
    fn fuzz_trailing_garbage_is_always_rejected() {
        let mut rng = crate::SimRng::seed_from_u64(0xF0223);
        for _ in 0..200 {
            let mut bytes = fuzz_corpus(&mut rng);
            let extra = rng.gen_range(1..16usize);
            for _ in 0..extra {
                bytes.push(rng.gen_range(0..u64::MAX) as u8);
            }
            assert_eq!(from_bytes::<FuzzTarget>(&bytes), None);
        }
    }

    /// Seeded fuzz: fully random byte soup must never panic the decoder.
    #[test]
    fn fuzz_random_bytes_never_panic() {
        let mut rng = crate::SimRng::seed_from_u64(0xF0224);
        for _ in 0..500 {
            let len = rng.gen_range(0..96usize);
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..u64::MAX) as u8).collect();
            let _ = from_bytes::<FuzzTarget>(&bytes);
        }
    }
}
