//! Backend-agnostic telemetry: log-scale histograms and a lock-cheap
//! metric registry.
//!
//! Two layers share one representation:
//!
//! * [`LogHistogram`] — a plain, mergeable, fixed-bucket log-linear
//!   (HDR-style) histogram of `u64` samples. Deterministic and `Clone`;
//!   this is what the simulator's [`Metrics`](crate::metrics::Metrics)
//!   sink records into, what `loadgen` aggregates latencies with, and
//!   what snapshots carry.
//! * [`Registry`] — a shared, thread-safe registry of counters, gauges
//!   and atomic histograms for the *real* backend (`NodeRuntime`,
//!   `FileStorage`, `TcpTransport`). Registration takes a `Mutex` once;
//!   the record path is a handful of relaxed atomic adds on
//!   preallocated arrays — no locks, no allocation.
//!
//! The bucket layout is log-linear with [`SUB_BITS`] = 7: values below
//! 128 get their own bucket (exact), and every octave above is split
//! into 128 sub-buckets, bounding the relative quantile error at
//! 1/128 < 0.79%. The full `u64` range fits in [`BUCKETS`] = 7424
//! buckets (~58 KiB per histogram).
//!
//! Metric names follow DESIGN.md §9 (`layer.noun[_unit]`, dot
//! separated); [`render_prometheus`] sanitizes them to Prometheus form
//! (`layer_noun_unit`). A name may carry a literal label suffix, e.g.
//! `rsmr.epoch{group="0"}` — only the part before `{` is sanitized.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
pub const SUB_BITS: u32 = 7;
const SUB: u64 = 1 << SUB_BITS; // 128
/// Total bucket count covering the full `u64` range: the 128 exact
/// buckets plus one 128-wide group per exponent in `7..=63`.
pub const BUCKETS: usize = SUB as usize + (64 - SUB_BITS as usize) * SUB as usize; // 7424

/// The bucket index a value lands in. Exact (width 1) below 256; the
/// width doubles every octave after that.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let e = (63 - v.leading_zeros()) as u64; // 7..=63
        let off = (v >> (e - SUB_BITS as u64)) & (SUB - 1);
        (SUB + (e - SUB_BITS as u64) * SUB + off) as usize
    }
}

/// The smallest value that maps to bucket `idx`.
#[inline]
pub fn bucket_lower(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        idx
    } else {
        let g = (idx - SUB) / SUB;
        let off = (idx - SUB) % SUB;
        (SUB + off) << g
    }
}

/// The largest value that maps to bucket `idx`.
#[inline]
pub fn bucket_upper(idx: usize) -> u64 {
    let w = if (idx as u64) < SUB {
        1
    } else {
        1u64 << ((idx as u64 - SUB) / SUB)
    };
    bucket_lower(idx).saturating_add(w - 1)
}

/// A fixed-bucket log-linear histogram of `u64` samples.
///
/// Mergeable (element-wise, associative and commutative), allocation
/// free after construction, and fully deterministic: the same sample
/// multiset always produces the same state regardless of record order.
/// `sum` saturates at `u64::MAX` instead of wrapping.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LogHistogram {
    buckets: Box<[u64]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; BUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of the same sample.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)] = self.buckets[bucket_index(v)].saturating_add(n);
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Element-wise saturating addition, so
    /// merging is associative and commutative.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The quantile `q` in `[0, 1]`, using the same rank convention as
    /// a sorted vector: `rank = round((count - 1) * q)`.
    ///
    /// Returns the exact sample when the rank falls on the minimum or
    /// maximum, or when the sample's bucket has width 1 (all values
    /// below 256) or the sample sits on a bucket boundary; otherwise
    /// the bucket's lower bound — an under-estimate by less than one
    /// sub-bucket width (< 0.79% relative). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        if rank == 0 {
            return self.min;
        }
        if rank >= self.count - 1 {
            return self.max;
        }
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(c);
            if cum > rank {
                return bucket_lower(idx).max(self.min);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(upper_bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| (bucket_upper(idx), c))
    }
}

// --- Atomic registry (real backend) ------------------------------------

/// A monotone counter handle. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Overwrites the value. For mirroring an externally-maintained
    /// cumulative count (e.g. a published actor-thread metric).
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A last-value gauge handle. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Increments (e.g. queue depth on enqueue).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Decrements, saturating at zero under racy over-subtraction.
    #[inline]
    pub fn sub(&self, n: u64) {
        // fetch_sub would wrap on a transient inc/dec race; a CAS loop
        // keeps the gauge non-negative.
        let _ = self
            .0
            .fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(n)));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> Self {
        AtomicHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// A coherent-enough copy for scraping: `count` is derived from the
    /// bucket loads so the quantile walk always sees a self-consistent
    /// distribution; `sum`/`min`/`max` may trail in-flight records by a
    /// few samples.
    fn snapshot(&self) -> LogHistogram {
        let mut h = LogHistogram::new();
        let mut count = 0u64;
        for (dst, src) in h.buckets.iter_mut().zip(self.buckets.iter()) {
            let c = src.load(Relaxed);
            *dst = c;
            count = count.saturating_add(c);
        }
        h.count = count;
        h.sum = self.sum.load(Relaxed);
        h.min = self.min.load(Relaxed);
        h.max = self.max.load(Relaxed);
        if count > 0 && h.min == u64::MAX {
            // A racer bumped a bucket before publishing min.
            h.min = 0;
        }
        h
    }
}

/// A histogram handle recording into shared atomic buckets.
#[derive(Clone)]
pub struct HistogramHandle(Arc<AtomicHistogram>);

impl HistogramHandle {
    /// Records one sample. Lock-free and allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }

    /// A point-in-time copy as a plain [`LogHistogram`].
    pub fn snapshot(&self) -> LogHistogram {
        self.0.snapshot()
    }
}

/// A batch of externally-maintained metrics pushed into a registry,
/// e.g. the actor thread's [`Metrics`](crate::metrics::Metrics) sink
/// mirrored for scraping.
#[derive(Clone, Default)]
pub struct Export {
    /// Cumulative counters as `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Last-value gauges as `(name, value)`.
    pub gauges: Vec<(String, u64)>,
    /// Histograms as `(name, histogram)`.
    pub histograms: Vec<(String, LogHistogram)>,
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<AtomicHistogram>>,
    published: BTreeMap<String, Export>,
}

/// A shared registry of counters, gauges and histograms.
///
/// Handles are registered once (under a `Mutex`) and record through
/// relaxed atomics thereafter. [`Registry::publish`] additionally
/// mirrors whole metric batches from threads that own a private sink;
/// [`Registry::snapshot`] and [`render_prometheus`] merge both views,
/// summing counters and merging histograms that share a name.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Configs embed registries; dumping every bucket would drown them.
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        Counter(
            inner
                .counters
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                .clone(),
        )
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        Gauge(
            inner
                .gauges
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                .clone(),
        )
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut inner = self.inner.lock().unwrap();
        HistogramHandle(
            inner
                .histograms
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(AtomicHistogram::new()))
                .clone(),
        )
    }

    /// Replaces the published batch under `source`. Each publishing
    /// thread uses its own source tag so batches never clobber each
    /// other.
    pub fn publish(&self, source: &str, export: Export) {
        let mut inner = self.inner.lock().unwrap();
        inner.published.insert(source.to_owned(), export);
    }

    /// A merged point-in-time view: registered atomics plus every
    /// published batch, counters summed and histograms merged by name.
    pub fn snapshot(&self) -> Export {
        let inner = self.inner.lock().unwrap();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, u64> = BTreeMap::new();
        let mut histograms: BTreeMap<String, LogHistogram> = BTreeMap::new();
        for (name, c) in &inner.counters {
            *counters.entry(name.clone()).or_insert(0) += c.load(Relaxed);
        }
        for (name, g) in &inner.gauges {
            gauges.insert(name.clone(), g.load(Relaxed));
        }
        for (name, h) in &inner.histograms {
            histograms
                .entry(name.clone())
                .or_default()
                .merge(&h.snapshot());
        }
        for export in inner.published.values() {
            for (name, v) in &export.counters {
                *counters.entry(name.clone()).or_insert(0) += v;
            }
            for (name, v) in &export.gauges {
                gauges.insert(name.clone(), *v);
            }
            for (name, h) in &export.histograms {
                histograms.entry(name.clone()).or_default().merge(h);
            }
        }
        Export {
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            histograms: histograms.into_iter().collect(),
        }
    }
}

/// Sanitizes a DESIGN §9 metric name (`layer.noun_unit`, optionally
/// with a `{label="v"}` suffix) to Prometheus form: every character of
/// the base name outside `[a-zA-Z0-9_:]` becomes `_`; the label suffix
/// is kept verbatim.
fn sanitize_into(out: &mut String, name: &str) {
    let (base, labels) = match name.find('{') {
        Some(i) => name.split_at(i),
        None => (name, ""),
    };
    for ch in base.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out.push_str(labels);
}

fn sanitized(name: &str) -> String {
    let mut s = String::with_capacity(name.len());
    sanitize_into(&mut s, name);
    s
}

/// Splits a sanitized name into `(base, label_body)` where the label
/// body excludes the braces (empty when unlabelled).
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], name[i + 1..].trim_end_matches('}')),
        None => (name, ""),
    }
}

/// Renders an [`Export`] (typically [`Registry::snapshot`]) in the
/// Prometheus text exposition format (version 0.0.4). Histograms emit
/// cumulative `_bucket{le=...}` lines at each non-empty bucket's upper
/// bound plus `+Inf`, and `_sum`/`_count`.
pub fn render_prometheus(export: &Export) -> String {
    let mut out = String::with_capacity(4096);
    for (name, v) in &export.counters {
        let full = sanitized(name);
        let (base, _) = split_labels(&full);
        let _ = writeln!(out, "# TYPE {base} counter");
        let _ = writeln!(out, "{full} {v}");
    }
    for (name, v) in &export.gauges {
        let full = sanitized(name);
        let (base, _) = split_labels(&full);
        let _ = writeln!(out, "# TYPE {base} gauge");
        let _ = writeln!(out, "{full} {v}");
    }
    for (name, h) in &export.histograms {
        let full = sanitized(name);
        let (base, labels) = split_labels(&full);
        let _ = writeln!(out, "# TYPE {base} histogram");
        let lbl = |le: &str| {
            if labels.is_empty() {
                format!("{base}_bucket{{le=\"{le}\"}}")
            } else {
                format!("{base}_bucket{{{labels},le=\"{le}\"}}")
            }
        };
        let mut cum = 0u64;
        for (upper, count) in h.nonzero_buckets() {
            cum = cum.saturating_add(count);
            let _ = writeln!(out, "{} {cum}", lbl(&upper.to_string()));
        }
        let _ = writeln!(out, "{} {}", lbl("+Inf"), h.count());
        let suffix = |s: &str| {
            if labels.is_empty() {
                format!("{base}_{s}")
            } else {
                format!("{base}_{s}{{{labels}}}")
            }
        };
        let _ = writeln!(out, "{} {}", suffix("sum"), h.sum());
        let _ = writeln!(out, "{} {}", suffix("count"), h.count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_below_two_fifty_six() {
        // Width-1 buckets: every value below 2^(SUB_BITS+1) maps to a
        // bucket whose lower and upper bounds are the value itself.
        for v in [0u64, 1, 2, 63, 127, 128, 129, 200, 255] {
            let idx = bucket_index(v);
            assert_eq!(bucket_lower(idx), v, "lower({v})");
            assert_eq!(bucket_upper(idx), v, "upper({v})");
        }
    }

    #[test]
    fn bucket_boundaries_cover_the_range_contiguously() {
        // Every bucket's lower bound maps back to the bucket, upper+1
        // maps to the next, and widths never shrink.
        let mut prev_upper: Option<u64> = None;
        for idx in 0..BUCKETS {
            let lo = bucket_lower(idx);
            let hi = bucket_upper(idx);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), idx, "index(lower({idx}))");
            assert_eq!(bucket_index(hi), idx, "index(upper({idx}))");
            if let Some(p) = prev_upper {
                assert_eq!(lo, p + 1, "gap before bucket {idx}");
            }
            prev_upper = Some(hi);
        }
        assert_eq!(prev_upper, Some(u64::MAX), "top bucket reaches u64::MAX");
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded_by_one_sub_bucket() {
        for v in [300u64, 1000, 12345, 1 << 20, 987_654_321, u64::MAX / 3] {
            let idx = bucket_index(v);
            let width = bucket_upper(idx) - bucket_lower(idx) + 1;
            assert!(
                (width as f64) / (v as f64) < 1.0 / 127.0,
                "width {width} too wide for {v}"
            );
        }
    }

    #[test]
    fn quantiles_match_a_sorted_vector_at_small_n() {
        // The loadgen parity contract: same rank convention as sorting,
        // exact on min/max and on width-1 / boundary-aligned samples.
        let samples = [100u64, 150, 1200, 999_900];
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples;
        sorted.sort_unstable();
        for (q, want) in [(0.0, 100), (0.5, 1200), (0.95, 999_900), (0.99, 999_900)] {
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            assert_eq!(sorted[idx], want, "rank convention changed");
            assert_eq!(h.quantile(q), want, "q={q}");
        }
        assert_eq!(h.min(), Some(100));
        assert_eq!(h.max(), Some(999_900));
        assert_eq!(h.sum(), 100 + 150 + 1200 + 999_900);
    }

    #[test]
    fn quantile_lower_bound_bias_is_within_one_bucket() {
        let mut h = LogHistogram::new();
        for v in 0..10_000u64 {
            h.record(v * 7 + 3);
        }
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            let rank = ((h.count() - 1) as f64 * q).round() as u64;
            let truth = rank * 7 + 3;
            let got = h.quantile(q);
            assert!(got <= truth, "q={q}: {got} > {truth}");
            assert!(
                (truth - got) as f64 <= truth as f64 / 127.0 + 1.0,
                "q={q}: {got} vs {truth}"
            );
        }
    }

    #[test]
    fn merge_is_associative_and_matches_single_recording() {
        let parts: [&[u64]; 3] = [&[1, 5, 300], &[70_000, 5, u64::MAX], &[0, 42]];
        let mut all = LogHistogram::new();
        for p in parts {
            for &v in p {
                all.record(v);
            }
        }
        // (a ⊕ b) ⊕ c
        let h = |vals: &[u64]| {
            let mut h = LogHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let mut left = h(parts[0]);
        left.merge(&h(parts[1]));
        left.merge(&h(parts[2]));
        // a ⊕ (b ⊕ c)
        let mut bc = h(parts[1]);
        bc.merge(&h(parts[2]));
        let mut right = h(parts[0]);
        right.merge(&bc);
        assert_eq!(left, right, "associativity");
        assert_eq!(left, all, "merge == single recording");
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(u64::MAX));
        let mut other = LogHistogram::new();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.sum(), u64::MAX, "merge saturates");
        assert_eq!(h.count(), 3);
        // record_n with a multiplied-out overflow also saturates.
        let mut m = LogHistogram::new();
        m.record_n(u64::MAX / 2, 3);
        assert_eq!(m.sum(), u64::MAX);
        assert_eq!(m.count(), 3);
        assert_eq!(m.quantile(0.5), u64::MAX / 2);
    }

    #[test]
    fn empty_histogram_is_guarded() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn registry_handles_share_state_and_merge_published_batches() {
        let reg = Registry::new();
        let c = reg.counter("net.reconnects");
        c.add(2);
        reg.counter("net.reconnects").add(1); // same underlying cell
        let g = reg.gauge("net.outbound_queue_depth{peer=\"1\"}");
        g.add(5);
        g.sub(2);
        g.sub(100); // saturates at zero, never wraps
        assert_eq!(g.get(), 0);
        g.set(3);
        let h = reg.histogram("storage.fsync_us");
        h.record(40);
        h.record(90);

        let mut export = Export::default();
        export.counters.push(("net.reconnects".into(), 10));
        let mut ph = LogHistogram::new();
        ph.record(100);
        export.histograms.push(("storage.fsync_us".into(), ph));
        reg.publish("rt", export);

        let snap = reg.snapshot();
        let counter = |n: &str| snap.counters.iter().find(|(k, _)| k == n).map(|(_, v)| *v);
        assert_eq!(counter("net.reconnects"), Some(13), "atomic + published");
        let hist = snap
            .histograms
            .iter()
            .find(|(k, _)| k == "storage.fsync_us")
            .map(|(_, h)| h.clone())
            .unwrap();
        assert_eq!(hist.count(), 3, "atomic + published merged");
        assert_eq!(hist.max(), Some(100));
    }

    #[test]
    fn prometheus_rendering_sanitizes_names_and_emits_cumulative_buckets() {
        let reg = Registry::new();
        reg.counter("rsmr.applied").add(7);
        reg.gauge("rsmr.epoch{group=\"0\"}").set(2);
        let h = reg.histogram("paxos.batch_size");
        h.record(1);
        h.record(1);
        h.record(64);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE rsmr_applied counter\nrsmr_applied 7\n"));
        assert!(text.contains("# TYPE rsmr_epoch gauge\nrsmr_epoch{group=\"0\"} 2\n"));
        assert!(text.contains("# TYPE paxos_batch_size histogram"));
        assert!(text.contains("paxos_batch_size_bucket{le=\"1\"} 2"));
        assert!(text.contains("paxos_batch_size_bucket{le=\"64\"} 3"));
        assert!(text.contains("paxos_batch_size_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("paxos_batch_size_sum 66"));
        assert!(text.contains("paxos_batch_size_count 3"));
        // Labelled histograms fold `le` into the existing label set.
        let lh = reg.histogram("net.coalesced_write_bytes{peer=\"2\"}");
        lh.record(10);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("net_coalesced_write_bytes_bucket{peer=\"2\",le=\"10\"} 1"));
        assert!(text.contains("net_coalesced_write_bytes_count{peer=\"2\"} 1"));
    }

    #[test]
    fn atomic_histogram_snapshot_matches_plain_recording() {
        let reg = Registry::new();
        let h = reg.histogram("x");
        let mut plain = LogHistogram::new();
        for v in [3u64, 128, 4096, 70_000] {
            h.record(v);
            plain.record(v);
        }
        assert_eq!(h.snapshot(), plain);
    }
}
