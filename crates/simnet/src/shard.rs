//! Multi-group composition: host several independent protocol instances
//! ("groups", i.e. shards) on one simulated node.
//!
//! The paper's composition runs one epoch chain. Scaling it out means many
//! chains — each shard its own sequence `S_0, S_1, …` — sharing a pool of
//! physical nodes. This module provides the plumbing that keeps those
//! chains fully isolated while co-hosted:
//!
//! - [`GroupId`] names a group; [`Grouped`] is the wire envelope that tags
//!   every message with the group it belongs to.
//! - [`MultiGroup`] is an [`Actor`] adaptor that multiplexes one inner
//!   actor per group over a single node. It unwraps envelopes, dispatches
//!   to the right group's actor, re-wraps everything the actor emits, tags
//!   timers with the group, and namespaces stable storage per group (see
//!   [`ScopedStore`](crate::storage::ScopedStore)) so co-hosted chains
//!   cannot clobber each other's recovery state.
//!
//! Inner actors are completely unaware of any of this: an unmodified
//! single-group protocol actor runs under `MultiGroup` byte-for-byte as it
//! would alone, which is what makes per-shard reconfiguration "just" the
//! existing protocol run `G` times.

use std::collections::BTreeMap;
use std::fmt;

use crate::actor::{Actor, Context, Emit, Message, Timer};
use crate::sim::NodeId;
use crate::storage::StableStore;
use crate::wire::Wire;

/// Timer kinds below this bound are usable by inner actors; the group id
/// is packed into the bits above.
const KIND_BITS: u32 = 8;
const KIND_MASK: u32 = (1 << KIND_BITS) - 1;

/// Identifies one composition group (one shard, one epoch chain).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl GroupId {
    /// The storage scope this group's actor writes under on every node.
    pub fn scope(&self) -> String {
        format!("{self}/")
    }
}

impl Wire for GroupId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(GroupId(u32::decode(buf)?))
    }
}

/// The sharded wire envelope: an inner protocol message tagged with the
/// group it belongs to.
#[derive(Clone, Debug)]
pub struct Grouped<M> {
    /// The group this message belongs to.
    pub group: GroupId,
    /// The protocol message, unchanged.
    pub inner: M,
}

impl<M: Message> Message for Grouped<M> {
    fn label(&self) -> &'static str {
        self.inner.label()
    }
    fn size_hint(&self) -> usize {
        // The envelope costs four bytes of group id on the wire.
        self.inner.size_hint() + 4
    }
}

impl<M: Wire> Wire for Grouped<M> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.group.encode(buf);
        self.inner.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(Grouped {
            group: GroupId::decode(buf)?,
            inner: M::decode(buf)?,
        })
    }
}

struct Entry<A> {
    /// Storage scope, e.g. `"g3/"`.
    scope: String,
    actor: A,
}

/// Decides whether a node spawns an actor for a group it does not host yet
/// when the first message for that group arrives (the sharded analogue of
/// pre-registering a joining replica). Return `None` to refuse: the
/// message is dropped and counted under `shard.unroutable`.
pub type GroupFactory<A> = Box<dyn FnMut(GroupId, &<A as Actor>::Msg) -> Option<A>>;

/// An [`Actor`] adaptor hosting one inner actor per [`GroupId`] on a
/// single node.
///
/// Messages carry their group in the [`Grouped`] envelope; timers carry it
/// packed into the high bits of the timer `kind` (inner actors keep the
/// low 8 bits of kinds to themselves); storage keys are scoped
/// per group. The inner actors share the node's RNG, metrics sink and
/// event bus — dispatch order within a node is deterministic (a message
/// goes to exactly one group; startup iterates groups in id order).
pub struct MultiGroup<A: Actor> {
    groups: BTreeMap<GroupId, Entry<A>>,
    factory: GroupFactory<A>,
    /// Reused buffer for inner-actor emits, translated after each dispatch.
    scratch: Vec<Emit<A::Msg>>,
}

impl<A: Actor> MultiGroup<A> {
    /// An empty multiplexer with a spawn policy for unhosted groups.
    pub fn new(factory: impl FnMut(GroupId, &A::Msg) -> Option<A> + 'static) -> Self {
        MultiGroup {
            groups: BTreeMap::new(),
            factory: Box::new(factory),
            scratch: Vec::new(),
        }
    }

    /// An empty multiplexer that never spawns actors for unhosted groups
    /// (messages to them are dropped and counted). Right for client and
    /// admin nodes whose group set is fixed at construction.
    pub fn sealed() -> Self {
        Self::new(|_, _| None)
    }

    /// Installs `actor` as this node's member of `group`, builder-style.
    pub fn with_group(mut self, group: GroupId, actor: A) -> Self {
        self.insert(group, actor);
        self
    }

    /// Installs `actor` as this node's member of `group`.
    ///
    /// # Panics
    ///
    /// Panics if the group is already hosted or its id does not fit the
    /// timer-packing budget.
    pub fn insert(&mut self, group: GroupId, actor: A) {
        assert!(
            group.0 < (1 << (32 - KIND_BITS)),
            "group id {group} out of range"
        );
        let prev = self.groups.insert(
            group,
            Entry {
                scope: group.scope(),
                actor,
            },
        );
        assert!(prev.is_none(), "group {group} already hosted");
    }

    /// Read access to the actor hosted for `group`, if any.
    pub fn get(&self, group: GroupId) -> Option<&A> {
        self.groups.get(&group).map(|e| &e.actor)
    }

    /// Iterates over `(group, actor)` pairs in group order.
    pub fn entries(&self) -> impl Iterator<Item = (GroupId, &A)> {
        self.groups.iter().map(|(&g, e)| (g, &e.actor))
    }

    /// Number of groups hosted on this node.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no group is hosted yet.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The distinct groups that have persisted state in `store` — what a
    /// restart factory recovers after a crash of a multi-group node.
    pub fn persisted_groups(store: &StableStore) -> Vec<GroupId> {
        let mut out: Vec<GroupId> = Vec::new();
        for key in store.keys_with_prefix("g") {
            let Some((num, _)) = key[1..].split_once('/') else {
                continue;
            };
            let Ok(n) = num.parse::<u32>() else { continue };
            if !out.contains(&GroupId(n)) {
                out.push(GroupId(n));
            }
        }
        out.sort();
        out
    }

    /// Runs one inner-actor callback under `group`'s scope and translates
    /// everything it emitted back into the enveloped world.
    fn dispatch(
        ctx: &mut Context<'_, Grouped<A::Msg>>,
        entry: &mut Entry<A>,
        group: GroupId,
        scratch: &mut Vec<Emit<A::Msg>>,
        f: impl FnOnce(&mut A, &mut Context<'_, A::Msg>),
    ) {
        let Entry { scope, actor } = entry;
        let mut out = std::mem::take(scratch);
        {
            let mut inner_ctx = Context {
                node: ctx.node,
                now: ctx.now,
                rng: &mut *ctx.rng,
                out: &mut out,
                storage: &mut *ctx.storage,
                key_prefix: scope,
                metrics: &mut *ctx.metrics,
                next_timer_id: &mut *ctx.next_timer_id,
                trace: &mut *ctx.trace,
                bus: &mut *ctx.bus,
            };
            f(actor, &mut inner_ctx);
        }
        for emit in out.drain(..) {
            match emit {
                Emit::Send { to, msg } => ctx.out.push(Emit::Send {
                    to,
                    msg: Grouped { group, inner: msg },
                }),
                Emit::SetTimer { id, at, kind } => {
                    debug_assert!(
                        kind <= KIND_MASK,
                        "inner timer kind {kind} exceeds the packing budget"
                    );
                    ctx.out.push(Emit::SetTimer {
                        id,
                        at,
                        kind: (group.0 << KIND_BITS) | (kind & KIND_MASK),
                    });
                }
                Emit::CancelTimer(id) => ctx.out.push(Emit::CancelTimer(id)),
            }
        }
        *scratch = out;
    }
}

impl<A: Actor> Actor for MultiGroup<A> {
    type Msg = Grouped<A::Msg>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        for (&group, entry) in self.groups.iter_mut() {
            Self::dispatch(ctx, entry, group, &mut self.scratch, |a, c| a.on_start(c));
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
        let Grouped { group, inner } = msg;
        if !self.groups.contains_key(&group) {
            match (self.factory)(group, &inner) {
                Some(actor) => {
                    self.insert(group, actor);
                    ctx.metrics().incr("shard.spawned", 1);
                    let entry = self.groups.get_mut(&group).expect("just inserted");
                    Self::dispatch(ctx, entry, group, &mut self.scratch, |a, c| a.on_start(c));
                }
                None => {
                    ctx.metrics().incr("shard.unroutable", 1);
                    return;
                }
            }
        }
        let entry = self.groups.get_mut(&group).expect("present");
        Self::dispatch(ctx, entry, group, &mut self.scratch, |a, c| {
            a.on_message(c, from, inner)
        });
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, timer: Timer) {
        let group = GroupId(timer.kind >> KIND_BITS);
        let kind = timer.kind & KIND_MASK;
        // A timer for a group this node no longer (or never) hosts is
        // stale: ignore it, exactly as a cancelled timer.
        let Some(entry) = self.groups.get_mut(&group) else {
            return;
        };
        Self::dispatch(ctx, entry, group, &mut self.scratch, |a, c| {
            a.on_timer(c, Timer { id: timer.id, kind })
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetConfig;
    use crate::sim::Sim;
    use crate::time::{SimDuration, SimTime};
    use crate::wire;

    #[derive(Clone, Debug)]
    struct Ping(u32);
    impl Message for Ping {
        fn label(&self) -> &'static str {
            "ping"
        }
        fn size_hint(&self) -> usize {
            4
        }
    }

    /// Echoes pings back `n` times, persists the count, re-arms a tick
    /// timer, and records which timer kinds it saw.
    struct Echo {
        received: u32,
        ticks: u32,
        seen_kinds: Vec<u32>,
    }

    impl Echo {
        fn new() -> Self {
            Echo {
                received: 0,
                ticks: 0,
                seen_kinds: Vec::new(),
            }
        }
    }

    impl Actor for Echo {
        type Msg = Ping;

        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.set_timer(SimDuration::from_millis(10), 1);
        }

        fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, msg: Ping) {
            self.received += 1;
            ctx.storage().put_u64("received", self.received as u64);
            if msg.0 > 0 {
                ctx.send(from, Ping(msg.0 - 1));
            }
        }

        fn on_timer(&mut self, ctx: &mut Context<'_, Ping>, timer: Timer) {
            self.ticks += 1;
            self.seen_kinds.push(timer.kind);
            if self.ticks < 3 {
                ctx.set_timer(SimDuration::from_millis(10), 1);
            }
        }
    }

    fn two_group_pair() -> (Sim<MultiGroup<Echo>>, NodeId, NodeId) {
        let mut sim = Sim::new(7, NetConfig::lan());
        let a = sim.add_node(
            MultiGroup::sealed()
                .with_group(GroupId(0), Echo::new())
                .with_group(GroupId(1), Echo::new()),
        );
        let b = sim.add_node(
            MultiGroup::sealed()
                .with_group(GroupId(0), Echo::new())
                .with_group(GroupId(1), Echo::new()),
        );
        (sim, a, b)
    }

    #[test]
    fn messages_route_to_their_group_only() {
        let (mut sim, a, b) = two_group_pair();
        sim.inject(
            a,
            b,
            Grouped {
                group: GroupId(0),
                inner: Ping(3),
            },
        );
        sim.run_until_quiet(SimDuration::from_secs(1));
        let bb = sim.actor(b).unwrap();
        assert_eq!(bb.get(GroupId(0)).unwrap().received, 2);
        assert_eq!(bb.get(GroupId(1)).unwrap().received, 0);
        let aa = sim.actor(a).unwrap();
        assert_eq!(aa.get(GroupId(0)).unwrap().received, 2);
    }

    #[test]
    fn timers_carry_their_group_and_unpack_the_inner_kind() {
        let (mut sim, a, _b) = two_group_pair();
        sim.run_for(SimDuration::from_millis(100));
        let aa = sim.actor(a).unwrap();
        for g in [GroupId(0), GroupId(1)] {
            let e = aa.get(g).unwrap();
            assert_eq!(e.ticks, 3, "{g}: every group's tick loop runs");
            assert!(
                e.seen_kinds.iter().all(|&k| k == 1),
                "{g}: inner actors see their own kinds, not packed ones"
            );
        }
    }

    #[test]
    fn storage_is_scoped_per_group() {
        let (mut sim, a, b) = two_group_pair();
        sim.inject(
            a,
            b,
            Grouped {
                group: GroupId(0),
                inner: Ping(0),
            },
        );
        sim.inject(
            a,
            b,
            Grouped {
                group: GroupId(1),
                inner: Ping(2),
            },
        );
        sim.run_until_quiet(SimDuration::from_secs(1));
        let store = sim.storage(b);
        assert_eq!(store.get_u64("g0/received"), Some(1));
        assert_eq!(store.get_u64("g1/received"), Some(2));
        assert_eq!(store.get_u64("received"), None);
        assert_eq!(
            MultiGroup::<Echo>::persisted_groups(store),
            vec![GroupId(0), GroupId(1)]
        );
        // Each group's subtree recovers independently.
        assert_eq!(store.subtree("g1/").get_u64("received"), Some(2));
    }

    #[test]
    fn factory_spawns_on_first_message_and_sealed_nodes_drop() {
        let mut sim: Sim<MultiGroup<Echo>> = Sim::new(3, NetConfig::lan());
        let spawning = sim.add_node(MultiGroup::new(|_, _| Some(Echo::new())));
        let sealed = sim.add_node(MultiGroup::sealed());
        sim.inject(
            sealed,
            spawning,
            Grouped {
                group: GroupId(4),
                inner: Ping(0),
            },
        );
        sim.inject(
            spawning,
            sealed,
            Grouped {
                group: GroupId(4),
                inner: Ping(0),
            },
        );
        sim.run_until_quiet(SimDuration::from_secs(1));
        assert_eq!(
            sim.actor(spawning)
                .unwrap()
                .get(GroupId(4))
                .unwrap()
                .received,
            1
        );
        assert_eq!(sim.metrics().counter("shard.spawned"), 1);
        assert_eq!(sim.metrics().counter("shard.unroutable"), 1);
        assert!(sim.actor(sealed).unwrap().is_empty());
        // The spawned actor ran on_start: its tick loop is live.
        sim.run_for(SimDuration::from_millis(100));
        assert_eq!(
            sim.actor(spawning).unwrap().get(GroupId(4)).unwrap().ticks,
            3
        );
    }

    #[test]
    fn same_seed_sharded_runs_are_identical() {
        let run = |seed: u64| {
            let mut sim: Sim<MultiGroup<Echo>> = Sim::new(seed, NetConfig::lossy(0.1));
            let a = sim.add_node(
                MultiGroup::sealed()
                    .with_group(GroupId(0), Echo::new())
                    .with_group(GroupId(1), Echo::new()),
            );
            let b = sim.add_node(
                MultiGroup::sealed()
                    .with_group(GroupId(0), Echo::new())
                    .with_group(GroupId(1), Echo::new()),
            );
            for i in 0..20 {
                sim.inject(
                    a,
                    b,
                    Grouped {
                        group: GroupId(i % 2),
                        inner: Ping(3),
                    },
                );
            }
            sim.run_until_quiet(SimDuration::from_secs(10));
            (sim.metrics().fingerprint(), sim.now())
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn group_id_wire_round_trip_and_envelope_size() {
        let bytes = wire::to_bytes(&GroupId(300));
        assert_eq!(wire::from_bytes::<GroupId>(&bytes), Some(GroupId(300)));
        assert_eq!(
            Grouped {
                group: GroupId(1),
                inner: Ping(0)
            }
            .size_hint(),
            8
        );
        assert_eq!(GroupId(3).to_string(), "g3");
        assert_eq!(GroupId(3).scope(), "g3/");
    }

    #[test]
    fn timers_survive_nothing_for_dropped_groups() {
        // A stale timer for an unhosted group is ignored rather than
        // panicking or hitting another group.
        let mut sim: Sim<MultiGroup<Echo>> = Sim::new(1, NetConfig::lan());
        let a = sim.add_node(MultiGroup::sealed().with_group(GroupId(2), Echo::new()));
        sim.with_node(a, |_, ctx| {
            // Forge a timer in group 9's range.
            ctx.set_timer(SimDuration::from_millis(5), (9 << 8) | 1);
        });
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.actor(a).unwrap().get(GroupId(2)).unwrap().ticks, 3);
    }
}
