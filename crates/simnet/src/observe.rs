//! Structured event stream: typed simulation + domain events, the observer
//! API, and built-in consumers (digest, log, span aggregation).
//!
//! The simulator already exposes *aggregate* observability (counters,
//! histograms, timelines in [`crate::Metrics`]) and a free-text bounded
//! [`crate::Trace`]. This module adds the third leg: a **typed event
//! stream**. The [`crate::Sim`] emits a [`SimEvent`] for every transport
//! action (send, deliver, drop, timer fire, crash, restart), and protocol
//! actors emit [`DomainEvent`]s through [`crate::Context::emit_event`] at
//! phase boundaries (epoch sealed, transfer served, command applied, ...).
//!
//! Consumers implement [`Observer`] and are installed with
//! [`crate::Sim::add_observer`]. With no observer installed the whole
//! machinery costs **one branch per would-be event**: events are built
//! inside a closure that [`EventBus::emit_with`] never calls when the
//! observer list is empty.
//!
//! Determinism: events are emitted synchronously from the single-threaded
//! simulation loop, so for a fixed seed the stream — and therefore
//! [`EventDigest`] — is exactly reproducible, regardless of how many sims
//! run on sibling threads.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::sim::NodeId;
use crate::time::{SimDuration, SimTime};

/// Why a message never reached its destination.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// Random loss on the link (the network model's `loss_rate`).
    Loss,
    /// The link is explicitly partitioned.
    Partitioned,
    /// The destination exists but is crashed.
    DestDown,
    /// The destination id has no slot in the simulation.
    DestUnknown,
    /// The message was corrupted in flight and rejected by the integrity
    /// layer (frame CRC). In the simulation messages are typed values, so
    /// a *detected* corruption is modelled exactly as what the real stack
    /// does with it: the frame is discarded, never applied.
    Corrupted,
}

impl DropReason {
    fn discriminant(self) -> u8 {
        match self {
            DropReason::Loss => 0,
            DropReason::Partitioned => 1,
            DropReason::DestDown => 2,
            DropReason::DestUnknown => 3,
            DropReason::Corrupted => 4,
        }
    }

    /// Stable lower-case name, used in rendered event logs.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::Loss => "loss",
            DropReason::Partitioned => "partitioned",
            DropReason::DestDown => "dest_down",
            DropReason::DestUnknown => "dest_unknown",
            DropReason::Corrupted => "corrupted",
        }
    }
}

/// A protocol-level event emitted by an actor via
/// [`crate::Context::emit_event`].
///
/// The vocabulary is deliberately protocol-agnostic — epochs and slots are
/// plain integers — so one observer (e.g. an invariant checker or the
/// [`Spans`] aggregator) works across every replication system in the
/// workspace. Events mark the *boundaries* of the two span families the
/// experiments care about:
///
/// * **reconfiguration spans**: `ReconfigProposed → EpochSealed →
///   TransferRequested → TransferServed → Anchored → FirstCommit`;
/// * **command spans**: `CmdSubmitted → CmdProposed → CmdCommitted →
///   CmdApplied`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DomainEvent {
    /// A `Reconfigure` command was accepted into epoch `epoch`'s log
    /// (beginning the close of that epoch).
    ReconfigProposed {
        /// The epoch being closed.
        epoch: u64,
    },
    /// Epoch `epoch` is sealed: its log ends at `seal_slot` and no command
    /// may commit past it.
    EpochSealed {
        /// The sealed epoch.
        epoch: u64,
        /// The slot of the epoch-closing command.
        seal_slot: u64,
    },
    /// A node asked `provider` for the base state of successor epoch
    /// `epoch`.
    TransferRequested {
        /// The epoch whose base state is requested.
        epoch: u64,
        /// The node the request was sent to.
        provider: NodeId,
    },
    /// A node served the base state of epoch `epoch` to `to`.
    TransferServed {
        /// The epoch whose base state was served.
        epoch: u64,
        /// The requesting node.
        to: NodeId,
        /// Encoded base-state size.
        bytes: u64,
    },
    /// The emitting node anchored at epoch `epoch` (it holds the base state
    /// and may apply that epoch's log).
    Anchored {
        /// The newly anchored epoch.
        epoch: u64,
    },
    /// First application command applied in epoch `epoch` on the emitting
    /// node — the end of the handoff gap that began at the predecessor's
    /// seal.
    FirstCommit {
        /// The epoch that just produced its first commit.
        epoch: u64,
        /// The slot of that first applied command.
        slot: u64,
    },
    /// A client submitted a fresh command (retransmits are not re-emitted).
    CmdSubmitted {
        /// The submitting client.
        client: NodeId,
        /// The client's session sequence number.
        seq: u64,
    },
    /// A leader proposed a command (or batch) at `(epoch, slot)`.
    CmdProposed {
        /// The epoch whose log the proposal targets.
        epoch: u64,
        /// The proposed slot.
        slot: u64,
    },
    /// Consensus committed the command at `(epoch, slot)` on the emitting
    /// node.
    CmdCommitted {
        /// The epoch of the committed slot.
        epoch: u64,
        /// The committed slot.
        slot: u64,
    },
    /// The command `(client, seq)` was applied to the state machine at
    /// `(epoch, slot)` on the emitting node.
    CmdApplied {
        /// The submitting client (session id).
        client: NodeId,
        /// The client's session sequence number.
        seq: u64,
        /// The epoch of the applied slot.
        epoch: u64,
        /// The applied slot.
        slot: u64,
    },
}

/// One typed event in the simulation's event stream.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SimEvent {
    /// A message entered the network.
    MsgSent {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// The message's static label.
        label: &'static str,
        /// The message's `size_hint` in bytes.
        bytes: u64,
    },
    /// A message reached its destination actor.
    MsgDelivered {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// The message's static label.
        label: &'static str,
    },
    /// A message was lost — at send time (loss, partition) or delivery time
    /// (crashed or unknown destination).
    MsgDropped {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// The message's static label.
        label: &'static str,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// A live timer fired on `node`.
    TimerFired {
        /// The node whose timer fired.
        node: NodeId,
        /// The protocol-chosen timer discriminant.
        kind: u32,
    },
    /// `node` crashed (volatile state lost).
    Crashed {
        /// The crashed node.
        node: NodeId,
    },
    /// `node` restarted.
    Restarted {
        /// The restarted node.
        node: NodeId,
    },
    /// A protocol-level event emitted by `node`.
    Domain {
        /// The emitting node.
        node: NodeId,
        /// The protocol event.
        event: DomainEvent,
    },
}

/// A consumer of the typed event stream.
///
/// Observers run synchronously inside the simulation loop, in installation
/// order. They must not mutate the simulation (they only see `&SimEvent`),
/// so they cannot break determinism.
pub trait Observer {
    /// Called once per event, with the virtual time at which it occurred.
    fn on_event(&mut self, at: SimTime, ev: &SimEvent);
}

/// Shared-handle observers: tests install `Rc<RefCell<T>>` so they can keep
/// a handle and inspect the observer after the run.
impl<T: Observer> Observer for Rc<RefCell<T>> {
    fn on_event(&mut self, at: SimTime, ev: &SimEvent) {
        self.borrow_mut().on_event(at, ev);
    }
}

/// Wraps an observer in a shared handle suitable for
/// [`crate::Sim::add_observer`] while retaining access to it.
pub fn shared<T: Observer>(obs: T) -> Rc<RefCell<T>> {
    Rc::new(RefCell::new(obs))
}

/// The simulation's fan-out point for [`SimEvent`]s.
///
/// Owned by [`crate::Sim`]; actors reach it through their [`crate::Context`].
/// With no observers installed, [`EventBus::emit_with`] is a single branch —
/// the event closure is never invoked.
#[derive(Default)]
pub struct EventBus {
    observers: Vec<Box<dyn Observer>>,
}

impl EventBus {
    pub(crate) fn new() -> Self {
        EventBus::default()
    }

    pub(crate) fn add(&mut self, obs: impl Observer + 'static) {
        self.observers.push(Box::new(obs));
    }

    /// True when at least one observer is installed. Actors can use this
    /// (via [`crate::Context::observed`]) to skip expensive event
    /// *preparation*; event *construction* is already skipped by
    /// [`EventBus::emit_with`].
    #[inline]
    pub fn is_active(&self) -> bool {
        !self.observers.is_empty()
    }

    /// Builds the event with `make` and fans it out — only if at least one
    /// observer is installed.
    #[inline]
    pub fn emit_with(&mut self, at: SimTime, make: impl FnOnce() -> SimEvent) {
        if self.observers.is_empty() {
            return;
        }
        let ev = make();
        for obs in &mut self.observers {
            obs.on_event(at, &ev);
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An order-sensitive FNV-1a digest of the event stream.
///
/// Two runs with the same seed must produce the same digest — this is the
/// event-stream analogue of [`crate::Metrics::fingerprint`] and
/// [`crate::Trace::digest`], and is what the determinism tests compare
/// between the serial and parallel experiment drivers.
#[derive(Clone, Debug)]
pub struct EventDigest {
    hash: u64,
    count: u64,
    /// Digest values captured at power-of-two event counts — the
    /// coverage-guided chaos sweep's notion of "which execution prefixes
    /// has this run visited" (see `chaos`).
    prefixes: Vec<(u64, u64)>,
}

impl Default for EventDigest {
    fn default() -> Self {
        EventDigest {
            hash: FNV_OFFSET,
            count: 0,
            prefixes: Vec::new(),
        }
    }
}

impl EventDigest {
    /// A fresh digest.
    pub fn new() -> Self {
        EventDigest::default()
    }

    /// The digest value so far.
    pub fn value(&self) -> u64 {
        self.hash
    }

    /// How many events have been folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Checkpointed `(event_count, digest)` pairs, captured whenever the
    /// event count crosses a power of two. Two runs share a prefix
    /// checkpoint exactly when their first `count` events hashed
    /// identically, so the set of distinct pairs across a sweep measures
    /// how many genuinely different execution prefixes were explored.
    pub fn prefix_digests(&self) -> &[(u64, u64)] {
        &self.prefixes
    }

    fn fold_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
    }

    fn fold_u64(&mut self, v: u64) {
        self.fold_bytes(&v.to_le_bytes());
    }
}

impl Observer for EventDigest {
    fn on_event(&mut self, at: SimTime, ev: &SimEvent) {
        self.count += 1;
        self.fold_u64(at.as_micros());
        if self.count.is_power_of_two() {
            self.prefixes.push((self.count, self.hash));
        }
        match *ev {
            SimEvent::MsgSent {
                from,
                to,
                label,
                bytes,
            } => {
                self.fold_u64(1);
                self.fold_u64(from.0);
                self.fold_u64(to.0);
                self.fold_bytes(label.as_bytes());
                self.fold_u64(bytes);
            }
            SimEvent::MsgDelivered { from, to, label } => {
                self.fold_u64(2);
                self.fold_u64(from.0);
                self.fold_u64(to.0);
                self.fold_bytes(label.as_bytes());
            }
            SimEvent::MsgDropped {
                from,
                to,
                label,
                reason,
            } => {
                self.fold_u64(3);
                self.fold_u64(from.0);
                self.fold_u64(to.0);
                self.fold_bytes(label.as_bytes());
                self.fold_u64(reason.discriminant() as u64);
            }
            SimEvent::TimerFired { node, kind } => {
                self.fold_u64(4);
                self.fold_u64(node.0);
                self.fold_u64(kind as u64);
            }
            SimEvent::Crashed { node } => {
                self.fold_u64(5);
                self.fold_u64(node.0);
            }
            SimEvent::Restarted { node } => {
                self.fold_u64(6);
                self.fold_u64(node.0);
            }
            SimEvent::Domain { node, event } => {
                self.fold_u64(7);
                self.fold_u64(node.0);
                match event {
                    DomainEvent::ReconfigProposed { epoch } => {
                        self.fold_u64(10);
                        self.fold_u64(epoch);
                    }
                    DomainEvent::EpochSealed { epoch, seal_slot } => {
                        self.fold_u64(11);
                        self.fold_u64(epoch);
                        self.fold_u64(seal_slot);
                    }
                    DomainEvent::TransferRequested { epoch, provider } => {
                        self.fold_u64(12);
                        self.fold_u64(epoch);
                        self.fold_u64(provider.0);
                    }
                    DomainEvent::TransferServed { epoch, to, bytes } => {
                        self.fold_u64(13);
                        self.fold_u64(epoch);
                        self.fold_u64(to.0);
                        self.fold_u64(bytes);
                    }
                    DomainEvent::Anchored { epoch } => {
                        self.fold_u64(14);
                        self.fold_u64(epoch);
                    }
                    DomainEvent::FirstCommit { epoch, slot } => {
                        self.fold_u64(15);
                        self.fold_u64(epoch);
                        self.fold_u64(slot);
                    }
                    DomainEvent::CmdSubmitted { client, seq } => {
                        self.fold_u64(16);
                        self.fold_u64(client.0);
                        self.fold_u64(seq);
                    }
                    DomainEvent::CmdProposed { epoch, slot } => {
                        self.fold_u64(17);
                        self.fold_u64(epoch);
                        self.fold_u64(slot);
                    }
                    DomainEvent::CmdCommitted { epoch, slot } => {
                        self.fold_u64(18);
                        self.fold_u64(epoch);
                        self.fold_u64(slot);
                    }
                    DomainEvent::CmdApplied {
                        client,
                        seq,
                        epoch,
                        slot,
                    } => {
                        self.fold_u64(19);
                        self.fold_u64(client.0);
                        self.fold_u64(seq);
                        self.fold_u64(epoch);
                        self.fold_u64(slot);
                    }
                }
            }
        }
    }
}

/// Retains every event with its timestamp — the heavyweight debugging
/// observer. Unbounded; intended for tests and short runs.
#[derive(Default)]
pub struct EventLog {
    events: Vec<(SimTime, SimEvent)>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[(SimTime, SimEvent)] {
        &self.events
    }

    /// Only the domain events, with emitting node and time.
    pub fn domain_events(&self) -> Vec<(SimTime, NodeId, DomainEvent)> {
        self.events
            .iter()
            .filter_map(|&(at, ev)| match ev {
                SimEvent::Domain { node, event } => Some((at, node, event)),
                _ => None,
            })
            .collect()
    }
}

impl Observer for EventLog {
    fn on_event(&mut self, at: SimTime, ev: &SimEvent) {
        self.events.push((at, *ev));
    }
}

/// The observable phases of one reconfiguration, keyed by the **successor**
/// epoch it creates.
///
/// All timestamps are first occurrences across the whole cluster (the seal
/// is a log fact, so every node seals the same epoch at the same slot; we
/// take the earliest observation).
#[derive(Copy, Clone, Debug, Default)]
pub struct EpochSpan {
    /// `Reconfigure` accepted into the predecessor's log.
    pub proposed_at: Option<SimTime>,
    /// Predecessor sealed.
    pub sealed_at: Option<SimTime>,
    /// The predecessor's seal slot.
    pub seal_slot: Option<u64>,
    /// First base-state transfer request for this epoch.
    pub transfer_requested_at: Option<SimTime>,
    /// First base-state transfer served for this epoch.
    pub transfer_served_at: Option<SimTime>,
    /// Total base-state bytes served for this epoch.
    pub transfer_bytes: u64,
    /// First node anchored at this epoch.
    pub anchored_at: Option<SimTime>,
    /// First application command applied in this epoch.
    pub first_commit_at: Option<SimTime>,
}

/// A derived per-epoch reconfiguration breakdown (see
/// [`Spans::epoch_breakdowns`]).
#[derive(Copy, Clone, Debug)]
pub struct EpochBreakdown {
    /// The successor epoch this reconfiguration created.
    pub epoch: u64,
    /// `Reconfigure` proposed → predecessor sealed.
    pub seal_latency: Option<SimDuration>,
    /// First transfer requested → first node anchored.
    pub transfer_time: Option<SimDuration>,
    /// Total base-state bytes served.
    pub transfer_bytes: u64,
    /// Predecessor sealed → first commit in this epoch (the client-visible
    /// handoff gap).
    pub handoff_gap: Option<SimDuration>,
}

/// Aggregates the event stream into reconfiguration spans and per-command
/// latency spans.
///
/// Install with [`crate::Sim::add_observer`] (usually via [`shared`] to keep
/// a handle); read the derived breakdowns after the run.
#[derive(Clone, Default)]
pub struct Spans {
    epochs: BTreeMap<u64, EpochSpan>,
    /// Submission time per live `(client, seq)` command span.
    submitted: BTreeMap<(u64, u64), SimTime>,
    /// Completed submit→apply latencies, µs, in completion order.
    latencies_us: Vec<u64>,
}

impl Spans {
    /// A fresh aggregator.
    pub fn new() -> Self {
        Spans::default()
    }

    fn span(&mut self, epoch: u64) -> &mut EpochSpan {
        self.epochs.entry(epoch).or_default()
    }

    /// The raw span for the reconfiguration that created `epoch`, if any of
    /// its phases were observed.
    pub fn epoch_span(&self, epoch: u64) -> Option<&EpochSpan> {
        self.epochs.get(&epoch)
    }

    /// Derived breakdowns for every observed reconfiguration, in epoch
    /// order. Epoch 0 (genesis) never appears: it is not created by a
    /// reconfiguration.
    pub fn epoch_breakdowns(&self) -> Vec<EpochBreakdown> {
        self.epochs
            .iter()
            .map(|(&epoch, s)| EpochBreakdown {
                epoch,
                seal_latency: match (s.proposed_at, s.sealed_at) {
                    (Some(p), Some(se)) => Some(se.since(p)),
                    _ => None,
                },
                transfer_time: match (s.transfer_requested_at, s.anchored_at) {
                    (Some(r), Some(a)) => Some(a.since(r)),
                    _ => None,
                },
                transfer_bytes: s.transfer_bytes,
                handoff_gap: match (s.sealed_at, s.first_commit_at) {
                    (Some(se), Some(f)) => Some(f.since(se)),
                    _ => None,
                },
            })
            .collect()
    }

    /// Completed submit→apply command latencies in µs, completion order.
    pub fn command_latencies_us(&self) -> &[u64] {
        &self.latencies_us
    }

    /// Count of completed command spans.
    pub fn commands_completed(&self) -> u64 {
        self.latencies_us.len() as u64
    }

    /// Mean completed command latency in µs (0 when none completed).
    pub fn mean_command_latency_us(&self) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let sum: u64 = self.latencies_us.iter().sum();
        sum / self.latencies_us.len() as u64
    }

    /// Submitted commands that never completed a span.
    pub fn commands_in_flight(&self) -> u64 {
        self.submitted.len() as u64
    }
}

impl Observer for Spans {
    fn on_event(&mut self, at: SimTime, ev: &SimEvent) {
        let SimEvent::Domain { event, .. } = *ev else {
            return;
        };
        match event {
            // Proposal and seal happen in the predecessor; key the span by
            // the successor epoch they create.
            DomainEvent::ReconfigProposed { epoch } => {
                let s = self.span(epoch + 1);
                s.proposed_at.get_or_insert(at);
            }
            DomainEvent::EpochSealed { epoch, seal_slot } => {
                let s = self.span(epoch + 1);
                s.sealed_at.get_or_insert(at);
                s.seal_slot.get_or_insert(seal_slot);
            }
            DomainEvent::TransferRequested { epoch, .. } => {
                self.span(epoch).transfer_requested_at.get_or_insert(at);
            }
            DomainEvent::TransferServed { epoch, bytes, .. } => {
                let s = self.span(epoch);
                s.transfer_served_at.get_or_insert(at);
                s.transfer_bytes += bytes;
            }
            // Genesis anchoring (epoch 0 at startup) is not part of any
            // reconfiguration span.
            DomainEvent::Anchored { epoch } if epoch > 0 => {
                self.span(epoch).anchored_at.get_or_insert(at);
            }
            DomainEvent::Anchored { .. } => {}
            DomainEvent::FirstCommit { epoch, slot: _ } if epoch > 0 => {
                self.span(epoch).first_commit_at.get_or_insert(at);
            }
            DomainEvent::FirstCommit { .. } => {}
            DomainEvent::CmdSubmitted { client, seq } => {
                self.submitted.entry((client.0, seq)).or_insert(at);
            }
            // The span completes at the *first* apply anywhere in the
            // cluster; replica re-applies of the same command are ignored.
            DomainEvent::CmdApplied { client, seq, .. } => {
                if let Some(t0) = self.submitted.remove(&(client.0, seq)) {
                    self.latencies_us.push(at.since(t0).as_micros());
                }
            }
            DomainEvent::CmdProposed { .. } | DomainEvent::CmdCommitted { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn empty_bus_is_inactive_and_skips_event_construction() {
        let mut bus = EventBus::new();
        assert!(!bus.is_active());
        let mut built = false;
        bus.emit_with(t(0), || {
            built = true;
            SimEvent::Crashed { node: NodeId(0) }
        });
        assert!(!built, "event must not be constructed without observers");
    }

    #[test]
    fn observers_see_events_in_order_via_shared_handle() {
        let mut bus = EventBus::new();
        let log = shared(EventLog::new());
        bus.add(log.clone());
        assert!(bus.is_active());
        bus.emit_with(t(1), || SimEvent::Crashed { node: NodeId(3) });
        bus.emit_with(t(2), || SimEvent::Restarted { node: NodeId(3) });
        let events = log.borrow().events().to_vec();
        assert_eq!(
            events,
            vec![
                (t(1), SimEvent::Crashed { node: NodeId(3) }),
                (t(2), SimEvent::Restarted { node: NodeId(3) }),
            ]
        );
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let ev_a = SimEvent::TimerFired {
            node: NodeId(1),
            kind: 2,
        };
        let ev_b = SimEvent::Crashed { node: NodeId(1) };
        let digest_of = |evs: &[(SimTime, SimEvent)]| {
            let mut d = EventDigest::new();
            for (at, ev) in evs {
                d.on_event(*at, ev);
            }
            d.value()
        };
        let ab = digest_of(&[(t(1), ev_a), (t(2), ev_b)]);
        let ba = digest_of(&[(t(1), ev_b), (t(2), ev_a)]);
        let ab2 = digest_of(&[(t(1), ev_a), (t(2), ev_b)]);
        assert_eq!(ab, ab2, "same stream, same digest");
        assert_ne!(ab, ba, "order must matter");
        let shifted = digest_of(&[(t(1), ev_a), (t(3), ev_b)]);
        assert_ne!(ab, shifted, "timestamps must matter");
    }

    #[test]
    fn spans_derive_epoch_breakdown_from_the_stream() {
        let mut spans = Spans::new();
        let n = NodeId(0);
        let dom = |event| SimEvent::Domain { node: n, event };
        spans.on_event(t(100), &dom(DomainEvent::ReconfigProposed { epoch: 0 }));
        spans.on_event(
            t(110),
            &dom(DomainEvent::EpochSealed {
                epoch: 0,
                seal_slot: 7,
            }),
        );
        spans.on_event(
            t(112),
            &dom(DomainEvent::TransferRequested {
                epoch: 1,
                provider: NodeId(2),
            }),
        );
        spans.on_event(
            t(118),
            &dom(DomainEvent::TransferServed {
                epoch: 1,
                to: n,
                bytes: 640,
            }),
        );
        spans.on_event(t(120), &dom(DomainEvent::Anchored { epoch: 1 }));
        spans.on_event(t(130), &dom(DomainEvent::FirstCommit { epoch: 1, slot: 8 }));
        let breakdowns = spans.epoch_breakdowns();
        assert_eq!(breakdowns.len(), 1);
        let b = breakdowns[0];
        assert_eq!(b.epoch, 1);
        assert_eq!(b.seal_latency, Some(SimDuration::from_millis(10)));
        assert_eq!(b.transfer_time, Some(SimDuration::from_millis(8)));
        assert_eq!(b.transfer_bytes, 640);
        assert_eq!(b.handoff_gap, Some(SimDuration::from_millis(20)));
        assert_eq!(spans.epoch_span(1).unwrap().seal_slot, Some(7));
    }

    #[test]
    fn spans_measure_command_latency_once_per_command() {
        let mut spans = Spans::new();
        let dom = |event| SimEvent::Domain {
            node: NodeId(0),
            event,
        };
        let client = NodeId(100);
        spans.on_event(t(10), &dom(DomainEvent::CmdSubmitted { client, seq: 1 }));
        spans.on_event(
            t(14),
            &dom(DomainEvent::CmdApplied {
                client,
                seq: 1,
                epoch: 0,
                slot: 0,
            }),
        );
        // Replica re-apply of the same command: ignored.
        spans.on_event(
            t(19),
            &dom(DomainEvent::CmdApplied {
                client,
                seq: 1,
                epoch: 0,
                slot: 0,
            }),
        );
        assert_eq!(spans.command_latencies_us(), &[4_000]);
        assert_eq!(spans.commands_completed(), 1);
        assert_eq!(spans.mean_command_latency_us(), 4_000);
        assert_eq!(spans.commands_in_flight(), 0);
    }
}
