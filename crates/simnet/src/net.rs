//! The network model: latency distributions, loss, duplication and
//! partitions.

use std::collections::{BTreeMap, BTreeSet};

use crate::rng::SimRng;
use crate::sim::NodeId;
use crate::time::{SimDuration, SimTime};

/// How long a message spends in flight on a link.
#[derive(Clone, Debug)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Fixed(SimDuration),
    /// Uniformly distributed in `[min, max]` (inclusive).
    Uniform(SimDuration, SimDuration),
    /// Normally distributed with the given mean and standard deviation,
    /// clamped below at `min`.
    Normal {
        /// Mean one-way delay.
        mean: SimDuration,
        /// Standard deviation of the delay.
        std: SimDuration,
        /// Hard lower bound on the sampled delay.
        min: SimDuration,
    },
}

impl LatencyModel {
    /// Samples a one-way delay from the model.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform(min, max) => {
                let (lo, hi) = (min.as_micros(), max.as_micros().max(min.as_micros()));
                SimDuration::from_micros(rng.gen_range(lo..=hi))
            }
            LatencyModel::Normal { mean, std, min } => {
                // Box–Muller transform; avoids pulling in rand_distr.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let sampled = mean.as_micros() as f64 + z * std.as_micros() as f64;
                let clamped = sampled.max(min.as_micros() as f64);
                SimDuration::from_micros(clamped.round() as u64)
            }
        }
    }
}

/// Parameters of a link (or of the whole network when used as the default).
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// One-way delay distribution.
    pub latency: LatencyModel,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_rate: f64,
    /// Probability in `[0, 1]` that a message is corrupted in flight.
    /// Every frame on the real wire carries a CRC32C, so a corrupted
    /// message is always *detected and discarded* by the receiver — the
    /// simulation models it as a distinct drop class
    /// ([`DropReason::Corrupted`](crate::observe::DropReason)), never as a
    /// mutated payload reaching the actor.
    pub corrupt_rate: f64,
    /// Probability in `[0, 1]` that a message is delivered twice.
    pub duplicate_rate: f64,
    /// Link bandwidth in bytes/second (`None` = infinite). Adds a
    /// size-proportional serialization delay on top of the latency, so
    /// bulk transfers (snapshots) cost realistically more than RPCs.
    pub bandwidth: Option<u64>,
    /// When true (and `bandwidth` is finite), a sender's egress port is a
    /// serial resource: each outgoing message occupies it for its
    /// serialization time, and concurrent sends queue behind one another.
    /// Off by default — without it `bandwidth` is a pure per-message delay
    /// and a busy sender never backs up, which is fine for latency studies
    /// but hides every throughput ceiling.
    pub egress_queueing: bool,
}

impl NetConfig {
    /// A tight, reliable datacenter LAN: 50–200µs one-way, no loss,
    /// 10 Gbit/s links.
    pub fn lan() -> Self {
        NetConfig {
            latency: LatencyModel::Uniform(
                SimDuration::from_micros(50),
                SimDuration::from_micros(200),
            ),
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            duplicate_rate: 0.0,
            bandwidth: Some(1_250_000_000),
            egress_queueing: false,
        }
    }

    /// A wide-area link: 20ms ± 4ms one-way, light loss.
    pub fn wan() -> Self {
        NetConfig {
            latency: LatencyModel::Normal {
                mean: SimDuration::from_millis(20),
                std: SimDuration::from_millis(4),
                min: SimDuration::from_millis(5),
            },
            drop_rate: 0.001,
            corrupt_rate: 0.0,
            duplicate_rate: 0.0,
            bandwidth: Some(12_500_000), // 100 Mbit/s
            egress_queueing: false,
        }
    }

    /// An adversarial network for stress tests: high jitter, loss and
    /// duplication.
    pub fn lossy(drop_rate: f64) -> Self {
        NetConfig {
            latency: LatencyModel::Uniform(
                SimDuration::from_micros(50),
                SimDuration::from_millis(30),
            ),
            drop_rate,
            corrupt_rate: 0.0,
            duplicate_rate: drop_rate / 2.0,
            bandwidth: Some(125_000_000), // 1 Gbit/s
            egress_queueing: false,
        }
    }

    /// Replaces the latency model, builder-style.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Replaces the drop rate, builder-style.
    pub fn with_drop_rate(mut self, drop_rate: f64) -> Self {
        self.drop_rate = drop_rate;
        self
    }

    /// Replaces the bandwidth, builder-style (`None` = infinite).
    pub fn with_bandwidth(mut self, bandwidth: Option<u64>) -> Self {
        self.bandwidth = bandwidth;
        self
    }

    /// Replaces the in-flight corruption rate, builder-style. Corrupted
    /// messages surface as detected drops, mirroring the CRC32C check on
    /// the real wire.
    pub fn with_corrupt_rate(mut self, corrupt_rate: f64) -> Self {
        self.corrupt_rate = corrupt_rate;
        self
    }

    /// Replaces the duplication rate, builder-style.
    pub fn with_duplicate_rate(mut self, duplicate_rate: f64) -> Self {
        self.duplicate_rate = duplicate_rate;
        self
    }

    /// Turns per-sender egress queueing on or off, builder-style. Requires
    /// a finite `bandwidth` to have any effect.
    pub fn with_egress_queueing(mut self, on: bool) -> Self {
        self.egress_queueing = on;
        self
    }

    /// Adds `extra` to the link's delay by shifting the latency model,
    /// builder-style. Used by fault windows that degrade a link.
    pub fn with_extra_delay(mut self, extra: SimDuration) -> Self {
        self.latency = match self.latency {
            LatencyModel::Fixed(d) => LatencyModel::Fixed(d + extra),
            LatencyModel::Uniform(lo, hi) => LatencyModel::Uniform(lo + extra, hi + extra),
            LatencyModel::Normal { mean, std, min } => LatencyModel::Normal {
                mean: mean + extra,
                std,
                min: min + extra,
            },
        };
        self
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::lan()
    }
}

/// What the network decided to do with one message.
///
/// The delivery delays are inline (primary plus optional duplicate) so the
/// per-message fast path never allocates.
pub(crate) enum Fate {
    /// Deliver after the first delay; when the link duplicated the message,
    /// deliver a second copy after the second delay.
    Deliver(SimDuration, Option<SimDuration>),
    /// Drop silently.
    Drop,
    /// The message was corrupted in flight; the receiver's integrity check
    /// rejects it, so it is dropped (and counted as a detected corruption).
    Corrupted,
    /// The link is cut by a partition.
    Partitioned,
}

/// Mutable network state: the default link config, per-link overrides, and
/// the current set of severed pairs.
pub(crate) struct NetworkState {
    default: NetConfig,
    overrides: BTreeMap<(NodeId, NodeId), NetConfig>,
    /// Unordered severed pairs, stored with the smaller id first.
    cut: BTreeSet<(NodeId, NodeId)>,
    /// Per-sender egress occupancy: the virtual time until which each
    /// node's outgoing port is busy serializing earlier messages. Only
    /// consulted when the resolved link config enables `egress_queueing`.
    busy_until: BTreeMap<NodeId, SimTime>,
}

impl NetworkState {
    pub(crate) fn new(default: NetConfig) -> Self {
        NetworkState {
            default,
            overrides: BTreeMap::new(),
            cut: BTreeSet::new(),
            busy_until: BTreeMap::new(),
        }
    }

    pub(crate) fn set_default(&mut self, cfg: NetConfig) {
        self.default = cfg;
    }

    pub(crate) fn set_link(&mut self, a: NodeId, b: NodeId, cfg: NetConfig) {
        self.overrides.insert((a, b), cfg.clone());
        self.overrides.insert((b, a), cfg);
    }

    /// Removes a per-link override in both directions; traffic on the pair
    /// reverts to the default config. A no-op if no override exists.
    pub(crate) fn clear_link(&mut self, a: NodeId, b: NodeId) {
        self.overrides.remove(&(a, b));
        self.overrides.remove(&(b, a));
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    pub(crate) fn block_link(&mut self, a: NodeId, b: NodeId) {
        self.cut.insert(Self::key(a, b));
    }

    pub(crate) fn unblock_link(&mut self, a: NodeId, b: NodeId) {
        self.cut.remove(&Self::key(a, b));
    }

    /// Severs every link between a node in `a` and a node in `b`.
    pub(crate) fn partition(&mut self, a: &[NodeId], b: &[NodeId]) {
        for &x in a {
            for &y in b {
                if x != y {
                    self.block_link(x, y);
                }
            }
        }
    }

    pub(crate) fn heal_all(&mut self) {
        self.cut.clear();
    }

    pub(crate) fn is_cut(&self, a: NodeId, b: NodeId) -> bool {
        self.cut.contains(&Self::key(a, b))
    }

    fn link_config(&self, from: NodeId, to: NodeId) -> &NetConfig {
        self.overrides.get(&(from, to)).unwrap_or(&self.default)
    }

    /// Decides the fate of a `size`-byte message from `from` to `to`,
    /// sent at virtual time `now`.
    pub(crate) fn route(
        &mut self,
        from: NodeId,
        to: NodeId,
        size: usize,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Fate {
        if self.is_cut(from, to) {
            return Fate::Partitioned;
        }
        let cfg = self.overrides.get(&(from, to)).unwrap_or(&self.default);
        let serialization = match cfg.bandwidth {
            Some(bw) if bw > 0 && size > 0 => {
                SimDuration::from_micros((size as u64).saturating_mul(1_000_000) / bw)
            }
            _ => SimDuration::ZERO,
        };
        // With egress queueing the message waits for the sender's port,
        // occupies it for its serialization time, and only then enters the
        // link — so a loaded sender backs up instead of fanning out for
        // free. Dropped messages still occupy the port (they left the NIC).
        let departure_delay = if cfg.egress_queueing && serialization > SimDuration::ZERO {
            let busy = self.busy_until.entry(from).or_insert(now);
            let done = (*busy).max(now) + serialization;
            *busy = done;
            done - now
        } else {
            serialization
        };
        let cfg = self.link_config(from, to);
        if cfg.drop_rate > 0.0 && rng.gen_bool(cfg.drop_rate.clamp(0.0, 1.0)) {
            return Fate::Drop;
        }
        // Corruption is drawn after loss: the frame made it onto the wire,
        // got mangled, and the receiver's CRC32C check rejects it. Like a
        // drop, it still occupied the sender's egress port.
        if cfg.corrupt_rate > 0.0 && rng.gen_bool(cfg.corrupt_rate.clamp(0.0, 1.0)) {
            return Fate::Corrupted;
        }
        let first = cfg.latency.sample(rng) + departure_delay;
        let dup = if cfg.duplicate_rate > 0.0 && rng.gen_bool(cfg.duplicate_rate.clamp(0.0, 1.0)) {
            Some(cfg.latency.sample(rng) + departure_delay)
        } else {
            None
        };
        Fate::Deliver(first, dup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(7)
    }

    #[test]
    fn fixed_latency_is_fixed() {
        let m = LatencyModel::Fixed(SimDuration::from_millis(3));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), SimDuration::from_millis(3));
        }
    }

    #[test]
    fn uniform_latency_stays_in_bounds() {
        let lo = SimDuration::from_micros(100);
        let hi = SimDuration::from_micros(500);
        let m = LatencyModel::Uniform(lo, hi);
        let mut r = rng();
        for _ in 0..1000 {
            let d = m.sample(&mut r);
            assert!(d >= lo && d <= hi, "{d} out of bounds");
        }
    }

    #[test]
    fn normal_latency_respects_floor() {
        let m = LatencyModel::Normal {
            mean: SimDuration::from_micros(100),
            std: SimDuration::from_micros(400),
            min: SimDuration::from_micros(50),
        };
        let mut r = rng();
        for _ in 0..1000 {
            assert!(m.sample(&mut r) >= SimDuration::from_micros(50));
        }
    }

    #[test]
    fn partitions_cut_both_directions_and_heal() {
        let mut net = NetworkState::new(NetConfig::lan());
        let (a, b, c) = (NodeId(1), NodeId(2), NodeId(3));
        net.partition(&[a], &[b, c]);
        assert!(net.is_cut(a, b));
        assert!(net.is_cut(b, a));
        assert!(net.is_cut(a, c));
        assert!(!net.is_cut(b, c));
        net.unblock_link(a, b);
        assert!(!net.is_cut(a, b));
        net.partition(&[a], &[b]);
        net.heal_all();
        assert!(!net.is_cut(a, b) && !net.is_cut(a, c));
    }

    #[test]
    fn route_drops_on_lossy_links() {
        let mut net = NetworkState::new(NetConfig::lan().with_drop_rate(1.0));
        let mut r = rng();
        match net.route(NodeId(1), NodeId(2), 0, SimTime::ZERO, &mut r) {
            Fate::Drop => {}
            _ => panic!("expected drop"),
        }
        net.set_default(NetConfig::lan());
        match net.route(NodeId(1), NodeId(2), 0, SimTime::ZERO, &mut r) {
            Fate::Deliver(_, dup) => assert!(dup.is_none()),
            _ => panic!("expected delivery"),
        }
    }

    #[test]
    fn per_link_overrides_take_precedence() {
        let mut net = NetworkState::new(NetConfig::lan());
        let (a, b) = (NodeId(1), NodeId(2));
        net.set_link(a, b, NetConfig::lan().with_drop_rate(1.0));
        let mut r = rng();
        assert!(matches!(
            net.route(a, b, 0, SimTime::ZERO, &mut r),
            Fate::Drop
        ));
        assert!(matches!(
            net.route(b, a, 0, SimTime::ZERO, &mut r),
            Fate::Drop
        ));
        assert!(matches!(
            net.route(a, NodeId(3), 0, SimTime::ZERO, &mut r),
            Fate::Deliver(..)
        ));
    }

    #[test]
    fn clear_link_restores_the_default_in_both_directions() {
        let mut net = NetworkState::new(NetConfig::lan());
        let (a, b) = (NodeId(1), NodeId(2));
        net.set_link(a, b, NetConfig::lan().with_drop_rate(1.0));
        net.clear_link(a, b);
        let mut r = rng();
        assert!(matches!(
            net.route(a, b, 0, SimTime::ZERO, &mut r),
            Fate::Deliver(..)
        ));
        assert!(matches!(
            net.route(b, a, 0, SimTime::ZERO, &mut r),
            Fate::Deliver(..)
        ));
        // Clearing an absent override is a no-op.
        net.clear_link(a, NodeId(9));
    }

    #[test]
    fn duplicate_rate_builder_forces_duplicates() {
        let mut net = NetworkState::new(NetConfig::lan().with_duplicate_rate(1.0));
        let mut r = rng();
        match net.route(NodeId(1), NodeId(2), 0, SimTime::ZERO, &mut r) {
            Fate::Deliver(_, dup) => assert!(dup.is_some()),
            _ => panic!("expected duplicated delivery"),
        }
    }

    #[test]
    fn extra_delay_shifts_every_latency_model() {
        let extra = SimDuration::from_millis(10);
        let mut r = rng();
        let fixed = NetConfig::lan()
            .with_latency(LatencyModel::Fixed(SimDuration::from_millis(1)))
            .with_extra_delay(extra);
        assert_eq!(fixed.latency.sample(&mut r), SimDuration::from_millis(11));
        let uniform = NetConfig::lan().with_extra_delay(extra);
        assert!(uniform.latency.sample(&mut r) >= extra);
        let normal = NetConfig::wan().with_extra_delay(extra);
        assert!(normal.latency.sample(&mut r) >= SimDuration::from_millis(15));
    }

    #[test]
    fn duplicate_partitions_do_not_accumulate() {
        // The cut set is normalized and deduplicated: partitioning the same
        // pair twice stores one entry, and a single unblock fully heals it.
        let mut net = NetworkState::new(NetConfig::lan());
        let (a, b) = (NodeId(1), NodeId(2));
        net.partition(&[a], &[b]);
        net.partition(&[b], &[a]);
        assert_eq!(net.cut.len(), 1);
        net.unblock_link(a, b);
        assert!(!net.is_cut(a, b));
        assert!(net.cut.is_empty());
    }
}
