//! The simulation driver.

use std::collections::BTreeSet;
use std::fmt;

use crate::actor::{Actor, Context, Emit, Message, Timer, TimerId};
use crate::event::{Ev, EventQueue};
use crate::metrics::Metrics;
use crate::net::{Fate, NetConfig, NetworkState};
use crate::observe::{DropReason, EventBus, Observer, SimEvent};
use crate::rng::SimRng;
use crate::storage::StableStore;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// Identifies a node (server or client) in a simulation.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

impl NodeId {
    /// A reserved id for messages injected from outside the simulation.
    pub const EXTERNAL: NodeId = NodeId(u64::MAX);
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == NodeId::EXTERNAL {
            write!(f, "ext")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

struct Slot<A> {
    actor: Option<A>,
    up: bool,
    storage: StableStore,
    /// Bumped on every restart; timer events from earlier incarnations are
    /// discarded when they fire.
    incarnation: u64,
    cancelled: BTreeSet<TimerId>,
}

/// A deterministic discrete-event simulation of a set of [`Actor`]s
/// connected by a modelled network.
///
/// See the crate-level documentation for an end-to-end example.
pub struct Sim<A: Actor> {
    time: SimTime,
    queue: EventQueue<A::Msg>,
    // Dense slot table indexed by `NodeId.0`: node ids are small and
    // contiguous-ish (servers from 0, admin/clients in the low hundreds), so
    // the per-event lookup in `step` is a bounds check + index instead of a
    // tree walk. `NodeId::EXTERNAL` never owns a slot.
    nodes: Vec<Option<Slot<A>>>,
    rng: SimRng,
    net: NetworkState,
    metrics: Metrics,
    trace: Trace,
    next_timer_id: u64,
    next_node_id: u64,
    // Reused across callbacks so the per-event emit collection never
    // allocates once it has warmed up.
    emit_scratch: Vec<Emit<A::Msg>>,
    bus: EventBus,
}

impl<A: Actor> Sim<A> {
    /// Creates an empty simulation with the given RNG seed and default
    /// network configuration.
    pub fn new(seed: u64, net: NetConfig) -> Self {
        Sim {
            time: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes: Vec::new(),
            rng: SimRng::seed_from_u64(seed),
            net: NetworkState::new(net),
            metrics: Metrics::new(),
            trace: Trace::default(),
            next_timer_id: 0,
            next_node_id: 0,
            emit_scratch: Vec::new(),
            bus: EventBus::new(),
        }
    }

    /// Installs an [`Observer`] on the typed event stream (see
    /// [`crate::observe`]). Observers run synchronously, in installation
    /// order; install before adding nodes to see startup events.
    pub fn add_observer(&mut self, obs: impl Observer + 'static) {
        self.bus.add(obs);
    }

    fn slot(&self, id: NodeId) -> Option<&Slot<A>> {
        self.nodes.get(id.0 as usize)?.as_ref()
    }

    fn slot_mut(&mut self, id: NodeId) -> Option<&mut Slot<A>> {
        self.nodes.get_mut(id.0 as usize)?.as_mut()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Adds a node with the next free id and invokes its
    /// [`Actor::on_start`].
    pub fn add_node(&mut self, actor: A) -> NodeId {
        let id = NodeId(self.next_node_id);
        self.next_node_id += 1;
        self.add_node_with_id(id, actor);
        id
    }

    /// Adds a node under an explicit id (which must be unused) and invokes
    /// its [`Actor::on_start`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is already present or is [`NodeId::EXTERNAL`].
    pub fn add_node_with_id(&mut self, id: NodeId, actor: A) {
        assert!(id != NodeId::EXTERNAL, "the external id is reserved");
        let idx = id.0 as usize;
        if idx >= self.nodes.len() {
            self.nodes.resize_with(idx + 1, || None);
        }
        assert!(self.nodes[idx].is_none(), "node {id} already exists");
        self.next_node_id = self.next_node_id.max(id.0 + 1);
        self.nodes[idx] = Some(Slot {
            actor: Some(actor),
            up: true,
            storage: StableStore::new(),
            incarnation: 0,
            cancelled: BTreeSet::new(),
        });
        self.run_callback(id, |actor, ctx| actor.on_start(ctx));
    }

    /// All node ids, in order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| NodeId(i as u64)))
            .collect()
    }

    /// True if the node exists and is currently up.
    pub fn is_up(&self, id: NodeId) -> bool {
        self.slot(id).map(|s| s.up).unwrap_or(false)
    }

    /// Crashes a node: its volatile state (the actor) is dropped, pending
    /// timers die, and in-flight messages to it will be discarded on
    /// arrival. Stable storage is retained for [`Sim::restart`].
    pub fn crash(&mut self, id: NodeId) {
        let slot = self.slot_mut(id).expect("unknown node");
        slot.up = false;
        slot.actor = None;
        slot.cancelled.clear();
        self.metrics.incr("sim.crashes", 1);
        self.bus
            .emit_with(self.time, || SimEvent::Crashed { node: id });
    }

    /// Restarts a crashed node with a fresh actor (typically rebuilt from
    /// [`Sim::storage`]) and invokes its [`Actor::on_start`].
    ///
    /// # Panics
    ///
    /// Panics if the node is unknown or still up.
    pub fn restart(&mut self, id: NodeId, actor: A) {
        let slot = self.slot_mut(id).expect("unknown node");
        assert!(!slot.up, "node {id} is already up");
        slot.up = true;
        slot.actor = Some(actor);
        slot.incarnation += 1;
        self.metrics.incr("sim.restarts", 1);
        self.bus
            .emit_with(self.time, || SimEvent::Restarted { node: id });
        self.run_callback(id, |actor, ctx| actor.on_start(ctx));
    }

    /// Read access to a node's stable storage (e.g. to rebuild an actor for
    /// [`Sim::restart`]).
    pub fn storage(&self, id: NodeId) -> &StableStore {
        &self.slot(id).expect("unknown node").storage
    }

    /// Severs all links between the two groups.
    pub fn partition(&mut self, a: &[NodeId], b: &[NodeId]) {
        self.net.partition(a, b);
    }

    /// Severs the single link `a — b`.
    pub fn block_link(&mut self, a: NodeId, b: NodeId) {
        self.net.block_link(a, b);
    }

    /// Restores the single link `a — b`.
    pub fn unblock_link(&mut self, a: NodeId, b: NodeId) {
        self.net.unblock_link(a, b);
    }

    /// Restores every severed link.
    pub fn heal_all(&mut self) {
        self.net.heal_all();
    }

    /// Replaces the default network configuration for future sends.
    pub fn set_net(&mut self, cfg: NetConfig) {
        self.net.set_default(cfg);
    }

    /// Overrides the configuration of one (bidirectional) link.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, cfg: NetConfig) {
        self.net.set_link(a, b, cfg);
    }

    /// Removes a per-link override set with [`Sim::set_link`]; the pair
    /// reverts to the default config. Used to close loss/delay fault
    /// windows.
    pub fn clear_link(&mut self, a: NodeId, b: NodeId) {
        self.net.clear_link(a, b);
    }

    /// Injects a message into the network as if `from` had sent it.
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: A::Msg) {
        self.apply_emits(from, &mut vec![Emit::Send { to, msg }]);
    }

    /// Runs a closure against a node with a full [`Context`], applying any
    /// emitted effects — the escape hatch harnesses use to hand work to an
    /// actor at a scripted time. Returns `None` if the node is down.
    pub fn with_node<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut A, &mut Context<'_, A::Msg>) -> R,
    ) -> Option<R> {
        if !self.is_up(id) {
            return None;
        }
        let mut result = None;
        self.run_callback(id, |actor, ctx| {
            result = Some(f(actor, ctx));
        });
        result
    }

    /// Immutable access to a node's actor (down nodes yield `None`).
    pub fn actor(&self, id: NodeId) -> Option<&A> {
        self.slot(id).and_then(|s| s.actor.as_ref())
    }

    /// The global metrics sink.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to the metrics sink.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Moves the metrics sink out, leaving an empty one behind. For
    /// end-of-run reporting this avoids cloning every counter, timeline
    /// and histogram map when the simulation is about to be dropped.
    pub fn take_metrics(&mut self) -> Metrics {
        std::mem::take(&mut self.metrics)
    }

    /// The simulation trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Enables trace recording (off by default).
    pub fn enable_trace(&mut self) {
        self.trace.set_enabled(true);
    }

    /// The simulation's RNG, for harness-level randomness that must stay
    /// deterministic.
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Number of events waiting in the queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Processes the next event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some((at, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.time, "time went backwards");
        self.time = at;
        self.dispatch(ev);
        true
    }

    /// Processes every event scheduled at or before `deadline`, then
    /// advances the clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.time = self.time.max(deadline);
    }

    /// Runs for `d` of virtual time from now.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.time + d;
        self.run_until(deadline);
    }

    /// Runs until the event queue drains or `limit` of virtual time elapses,
    /// whichever comes first. Returns `true` if the queue drained.
    pub fn run_until_quiet(&mut self, limit: SimDuration) -> bool {
        let deadline = self.time + limit;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                self.time = deadline;
                return false;
            }
            self.step();
        }
        true
    }

    fn dispatch(&mut self, ev: Ev<A::Msg>) {
        match ev {
            Ev::Deliver { to, from, msg } => {
                let Some(slot) = self.slot(to) else {
                    self.metrics.net.dropped_unknown += 1;
                    self.bus.emit_with(self.time, || SimEvent::MsgDropped {
                        from,
                        to,
                        label: msg.label(),
                        reason: DropReason::DestUnknown,
                    });
                    return;
                };
                if !slot.up {
                    self.metrics.net.dropped_down += 1;
                    self.bus.emit_with(self.time, || SimEvent::MsgDropped {
                        from,
                        to,
                        label: msg.label(),
                        reason: DropReason::DestDown,
                    });
                    return;
                }
                self.metrics.net.delivered += 1;
                self.bus.emit_with(self.time, || SimEvent::MsgDelivered {
                    from,
                    to,
                    label: msg.label(),
                });
                self.run_callback(to, |actor, ctx| actor.on_message(ctx, from, msg));
            }
            Ev::TimerFire {
                node,
                id,
                kind,
                incarnation,
            } => {
                let Some(slot) = self.slot_mut(node) else {
                    return;
                };
                if !slot.up || slot.incarnation != incarnation {
                    return;
                }
                if slot.cancelled.remove(&id) {
                    return;
                }
                self.bus
                    .emit_with(self.time, || SimEvent::TimerFired { node, kind });
                self.run_callback(node, |actor, ctx| actor.on_timer(ctx, Timer { id, kind }));
            }
        }
    }

    /// Runs `f` as a callback on node `id` with a context, then applies the
    /// emitted effects. No-op if the node is down or missing.
    fn run_callback(&mut self, id: NodeId, f: impl FnOnce(&mut A, &mut Context<'_, A::Msg>)) {
        let mut out = std::mem::take(&mut self.emit_scratch);
        {
            let Some(slot) = self.nodes.get_mut(id.0 as usize).and_then(|s| s.as_mut()) else {
                self.emit_scratch = out;
                return;
            };
            if !slot.up {
                self.emit_scratch = out;
                return;
            }
            let Some(actor) = slot.actor.as_mut() else {
                self.emit_scratch = out;
                return;
            };
            let mut ctx = Context {
                node: id,
                now: self.time,
                rng: &mut self.rng,
                out: &mut out,
                storage: &mut slot.storage,
                key_prefix: "",
                metrics: &mut self.metrics,
                next_timer_id: &mut self.next_timer_id,
                trace: &mut self.trace,
                bus: &mut self.bus,
            };
            f(actor, &mut ctx);
        }
        self.apply_emits(id, &mut out);
        self.emit_scratch = out;
    }

    fn apply_emits(&mut self, origin: NodeId, emits: &mut Vec<Emit<A::Msg>>) {
        for emit in emits.drain(..) {
            match emit {
                Emit::Send { to, msg } => {
                    let size = msg.size_hint();
                    let label = msg.label();
                    self.metrics.net.sent += 1;
                    self.metrics.incr_label(label, 1);
                    self.metrics.net.bytes += size as u64;
                    self.bus.emit_with(self.time, || SimEvent::MsgSent {
                        from: origin,
                        to,
                        label,
                        bytes: size as u64,
                    });
                    if to == origin {
                        // Local self-send: deliver next step with no latency.
                        self.queue.push(
                            self.time,
                            Ev::Deliver {
                                to,
                                from: origin,
                                msg,
                            },
                        );
                        continue;
                    }
                    match self.net.route(origin, to, size, self.time, &mut self.rng) {
                        Fate::Deliver(delay, dup) => {
                            // The primary copy takes ownership of the
                            // payload: the common single-delivery case
                            // enqueues without cloning. The duplicate (rare)
                            // pays the clone.
                            let dup = dup.map(|d| (d, msg.clone()));
                            self.queue.push(
                                self.time + delay,
                                Ev::Deliver {
                                    to,
                                    from: origin,
                                    msg,
                                },
                            );
                            if let Some((dup_delay, dup_msg)) = dup {
                                self.queue.push(
                                    self.time + dup_delay,
                                    Ev::Deliver {
                                        to,
                                        from: origin,
                                        msg: dup_msg,
                                    },
                                );
                            }
                        }
                        Fate::Drop => {
                            self.metrics.net.dropped += 1;
                            self.bus.emit_with(self.time, || SimEvent::MsgDropped {
                                from: origin,
                                to,
                                label,
                                reason: DropReason::Loss,
                            });
                        }
                        Fate::Corrupted => {
                            self.metrics.net.corrupted += 1;
                            self.bus.emit_with(self.time, || SimEvent::MsgDropped {
                                from: origin,
                                to,
                                label,
                                reason: DropReason::Corrupted,
                            });
                        }
                        Fate::Partitioned => {
                            self.metrics.net.partitioned += 1;
                            self.bus.emit_with(self.time, || SimEvent::MsgDropped {
                                from: origin,
                                to,
                                label,
                                reason: DropReason::Partitioned,
                            });
                        }
                    }
                }
                Emit::SetTimer { id, at, kind } => {
                    let incarnation = self.slot(origin).map(|s| s.incarnation).unwrap_or(0);
                    self.queue.push(
                        at,
                        Ev::TimerFire {
                            node: origin,
                            id,
                            kind,
                            incarnation,
                        },
                    );
                }
                Emit::CancelTimer(id) => {
                    if let Some(slot) = self.slot_mut(origin) {
                        slot.cancelled.insert(id);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::Message;

    #[derive(Clone, Debug)]
    enum TestMsg {
        Ping(u32),
        Save(u64),
    }
    impl Message for TestMsg {
        fn label(&self) -> &'static str {
            match self {
                TestMsg::Ping(_) => "ping",
                TestMsg::Save(_) => "save",
            }
        }
        fn size_hint(&self) -> usize {
            4
        }
    }

    /// Echoes pings back with an incremented counter until 5; persists
    /// `Save` payloads; a `kind=1` timer re-sends the last ping.
    struct TestActor {
        peer: Option<NodeId>,
        received: u32,
        timer_fired: bool,
    }

    impl TestActor {
        fn new(peer: Option<NodeId>) -> Self {
            TestActor {
                peer,
                received: 0,
                timer_fired: false,
            }
        }
    }

    impl Actor for TestActor {
        type Msg = TestMsg;

        fn on_message(&mut self, ctx: &mut Context<'_, TestMsg>, from: NodeId, msg: TestMsg) {
            match msg {
                TestMsg::Ping(n) => {
                    self.received += 1;
                    if n < 5 {
                        ctx.send(from, TestMsg::Ping(n + 1));
                    }
                }
                TestMsg::Save(v) => ctx.storage().put_u64("saved", v),
            }
            let _ = self.peer;
        }

        fn on_timer(&mut self, _ctx: &mut Context<'_, TestMsg>, _timer: Timer) {
            self.timer_fired = true;
        }
    }

    fn pair() -> (Sim<TestActor>, NodeId, NodeId) {
        let mut sim = Sim::new(1, NetConfig::lan());
        let a = sim.add_node(TestActor::new(None));
        let b = sim.add_node(TestActor::new(Some(a)));
        (sim, a, b)
    }

    #[test]
    fn ping_pong_terminates_and_counts() {
        let (mut sim, a, b) = pair();
        sim.inject(a, b, TestMsg::Ping(0));
        assert!(sim.run_until_quiet(SimDuration::from_secs(1)));
        // Ping(0)..Ping(5) = 6 deliveries total.
        assert_eq!(sim.metrics().counter("net.delivered"), 6);
        assert_eq!(sim.metrics().label_count("ping"), 6);
        let total: u32 = [a, b].iter().map(|&n| sim.actor(n).unwrap().received).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn duplicate_partitions_count_once_and_heal_all_restores() {
        // Partitioning the same pair repeatedly must not inflate the
        // partition-drop count: the cut set is deduplicated, so each blocked
        // send increments `net.partitioned` exactly once, and a single
        // `heal_all` restores everything.
        let (mut sim, a, b) = pair();
        sim.partition(&[a], &[b]);
        sim.partition(&[a], &[b]);
        sim.partition(&[b], &[a]);
        sim.inject(a, b, TestMsg::Ping(0));
        sim.run_until_quiet(SimDuration::from_secs(1));
        assert_eq!(sim.metrics().counter("net.partitioned"), 1);
        assert_eq!(sim.metrics().counter("net.delivered"), 0);
        sim.heal_all();
        sim.inject(a, b, TestMsg::Ping(0));
        sim.run_until_quiet(SimDuration::from_secs(1));
        assert_eq!(sim.metrics().counter("net.partitioned"), 1);
        assert_eq!(sim.metrics().counter("net.delivered"), 6);
    }

    #[test]
    fn clear_link_reverts_an_override_to_the_default() {
        let (mut sim, a, b) = pair();
        sim.set_link(a, b, NetConfig::lan().with_drop_rate(1.0));
        sim.inject(a, b, TestMsg::Ping(5));
        sim.run_until_quiet(SimDuration::from_secs(1));
        assert_eq!(sim.metrics().counter("net.delivered"), 0);
        sim.clear_link(a, b);
        sim.inject(a, b, TestMsg::Ping(5));
        sim.run_until_quiet(SimDuration::from_secs(1));
        assert_eq!(sim.metrics().counter("net.delivered"), 1);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed: u64| {
            let mut sim = Sim::new(seed, NetConfig::lossy(0.2));
            let a = sim.add_node(TestActor::new(None));
            let b = sim.add_node(TestActor::new(None));
            for i in 0..50 {
                sim.inject(a, b, TestMsg::Ping(i % 5));
            }
            sim.run_until_quiet(SimDuration::from_secs(10));
            (
                sim.metrics().counter("net.delivered"),
                sim.metrics().counter("net.dropped"),
                sim.now(),
            )
        };
        assert_eq!(run(99), run(99));
        // And a different seed should (with overwhelming likelihood) differ.
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn crashed_nodes_drop_messages_and_keep_storage() {
        let (mut sim, a, b) = pair();
        sim.inject(a, b, TestMsg::Save(42));
        sim.run_until_quiet(SimDuration::from_secs(1));
        assert_eq!(sim.storage(b).get_u64("saved"), Some(42));

        sim.crash(b);
        assert!(!sim.is_up(b));
        sim.inject(a, b, TestMsg::Ping(0));
        sim.run_until_quiet(SimDuration::from_secs(1));
        assert_eq!(sim.metrics().counter("net.dropped_down"), 1);

        // Storage survives; a restarted actor can read it.
        assert_eq!(sim.storage(b).get_u64("saved"), Some(42));
        sim.restart(b, TestActor::new(None));
        assert!(sim.is_up(b));
        sim.inject(a, b, TestMsg::Ping(5));
        sim.run_until_quiet(SimDuration::from_secs(1));
        assert_eq!(sim.actor(b).unwrap().received, 1);
    }

    #[test]
    fn timers_from_old_incarnations_do_not_fire() {
        let (mut sim, _a, b) = pair();
        sim.with_node(b, |_, ctx| {
            ctx.set_timer(SimDuration::from_millis(10), 1);
        });
        sim.crash(b);
        sim.restart(b, TestActor::new(None));
        sim.run_for(SimDuration::from_millis(50));
        assert!(!sim.actor(b).unwrap().timer_fired);
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let (mut sim, _a, b) = pair();
        let id = sim
            .with_node(b, |_, ctx| ctx.set_timer(SimDuration::from_millis(10), 1))
            .unwrap();
        sim.with_node(b, |_, ctx| ctx.cancel_timer(id));
        sim.run_for(SimDuration::from_millis(50));
        assert!(!sim.actor(b).unwrap().timer_fired);
    }

    #[test]
    fn live_timers_fire_once() {
        let (mut sim, _a, b) = pair();
        sim.with_node(b, |_, ctx| {
            ctx.set_timer(SimDuration::from_millis(10), 7);
        });
        sim.run_for(SimDuration::from_millis(50));
        assert!(sim.actor(b).unwrap().timer_fired);
    }

    #[test]
    fn partitions_stop_traffic_until_healed() {
        let (mut sim, a, b) = pair();
        sim.partition(&[a], &[b]);
        sim.inject(a, b, TestMsg::Ping(5));
        sim.run_until_quiet(SimDuration::from_secs(1));
        assert_eq!(sim.metrics().counter("net.partitioned"), 1);
        assert_eq!(sim.actor(b).unwrap().received, 0);

        sim.heal_all();
        sim.inject(a, b, TestMsg::Ping(5));
        sim.run_until_quiet(SimDuration::from_secs(1));
        assert_eq!(sim.actor(b).unwrap().received, 1);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let (mut sim, _a, _b) = pair();
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn explicit_ids_are_respected_and_unique() {
        let mut sim: Sim<TestActor> = Sim::new(0, NetConfig::lan());
        sim.add_node_with_id(NodeId(10), TestActor::new(None));
        let next = sim.add_node(TestActor::new(None));
        assert_eq!(next, NodeId(11));
        assert_eq!(sim.node_ids(), vec![NodeId(10), NodeId(11)]);
    }

    #[test]
    fn self_sends_are_delivered_immediately() {
        let (mut sim, a, _b) = pair();
        sim.inject(a, a, TestMsg::Ping(5));
        let before = sim.now();
        sim.step();
        assert_eq!(sim.now(), before);
        assert_eq!(sim.actor(a).unwrap().received, 1);
    }

    #[test]
    fn observers_see_transport_events_and_digest_is_seed_stable() {
        use crate::observe::{shared, EventDigest, EventLog, SimEvent};
        let run = |seed: u64| {
            let mut sim: Sim<TestActor> = Sim::new(seed, NetConfig::lossy(0.2));
            let digest = shared(EventDigest::new());
            let log = shared(EventLog::new());
            sim.add_observer(digest.clone());
            sim.add_observer(log.clone());
            let a = sim.add_node(TestActor::new(None));
            let b = sim.add_node(TestActor::new(None));
            for i in 0..20 {
                sim.inject(a, b, TestMsg::Ping(i % 5));
            }
            sim.crash(b);
            sim.inject(a, b, TestMsg::Ping(5));
            sim.run_until_quiet(SimDuration::from_secs(10));
            sim.restart(b, TestActor::new(None));
            sim.run_until_quiet(SimDuration::from_secs(10));
            let sent = log
                .borrow()
                .events()
                .iter()
                .filter(|(_, ev)| matches!(ev, SimEvent::MsgSent { .. }))
                .count() as u64;
            let delivered = log
                .borrow()
                .events()
                .iter()
                .filter(|(_, ev)| matches!(ev, SimEvent::MsgDelivered { .. }))
                .count() as u64;
            let crashes = log
                .borrow()
                .events()
                .iter()
                .filter(|(_, ev)| {
                    matches!(ev, SimEvent::Crashed { .. } | SimEvent::Restarted { .. })
                })
                .count();
            let digest_value = digest.borrow().value();
            (
                digest_value,
                sent,
                delivered,
                crashes,
                sim.metrics().fingerprint(),
            )
        };
        let (d1, sent, delivered, crashes, fp1) = run(7);
        let (d2, _, _, _, fp2) = run(7);
        assert_eq!(d1, d2, "event digest must be seed-stable");
        assert_eq!(fp1, fp2);
        assert_eq!(crashes, 2, "one crash + one restart observed");
        assert!(sent >= 21);
        assert!(delivered <= sent, "lossy net: {delivered} of {sent}");
        let (d3, ..) = run(8);
        assert_ne!(d1, d3, "different seeds should diverge");
    }

    #[test]
    fn uninstalled_observers_change_nothing() {
        // Identical runs with and without an observer installed: metrics and
        // trace must match exactly — observation is read-only.
        let run = |observe: bool| {
            let mut sim: Sim<TestActor> = Sim::new(11, NetConfig::lossy(0.1));
            if observe {
                sim.add_observer(crate::observe::EventDigest::new());
            }
            let a = sim.add_node(TestActor::new(None));
            let b = sim.add_node(TestActor::new(None));
            for i in 0..30 {
                sim.inject(a, b, TestMsg::Ping(i % 5));
            }
            sim.run_until_quiet(SimDuration::from_secs(10));
            (sim.metrics().fingerprint(), sim.now())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn domain_events_flow_from_context_to_observers() {
        use crate::observe::{shared, DomainEvent, EventLog};
        let mut sim: Sim<TestActor> = Sim::new(1, NetConfig::lan());
        let log = shared(EventLog::new());
        sim.add_observer(log.clone());
        let a = sim.add_node(TestActor::new(None));
        sim.with_node(a, |_, ctx| {
            assert!(ctx.observed());
            ctx.emit_event(DomainEvent::Anchored { epoch: 3 });
        });
        let domain = log.borrow().domain_events();
        assert_eq!(domain.len(), 1);
        let (_, node, ev) = domain[0];
        assert_eq!(node, a);
        assert_eq!(ev, DomainEvent::Anchored { epoch: 3 });
    }

    #[test]
    fn sparse_ids_and_external_never_alias_a_slot() {
        let mut sim: Sim<TestActor> = Sim::new(0, NetConfig::lan());
        let a = sim.add_node(TestActor::new(None));
        sim.add_node_with_id(NodeId(99), TestActor::new(None));
        assert_eq!(sim.node_ids(), vec![NodeId(0), NodeId(99)]);
        assert!(!sim.is_up(NodeId(50)));
        assert!(!sim.is_up(NodeId::EXTERNAL));
        // Messages to ids without a slot are counted, not delivered.
        sim.inject(a, NodeId(50), TestMsg::Ping(5));
        sim.run_until_quiet(SimDuration::from_secs(1));
        assert_eq!(sim.metrics().counter("net.dropped_unknown"), 1);
    }
}
