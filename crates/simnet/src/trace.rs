//! A bounded textual trace of simulation events, for debugging failed runs.

use std::collections::VecDeque;

use crate::sim::NodeId;
use crate::time::SimTime;

/// A ring buffer of human-readable trace lines.
///
/// Tracing is off by default; [`crate::Sim::enable_trace`] turns it on. The
/// closure-based [`crate::Context::trace`] API means disabled tracing costs
/// only a branch.
#[derive(Clone, Debug)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    lines: VecDeque<String>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace {
            enabled: false,
            capacity: 10_000,
            lines: VecDeque::new(),
        }
    }
}

impl Trace {
    /// Creates a disabled trace with the given line capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            enabled: false,
            capacity,
            lines: VecDeque::new(),
        }
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a line if enabled, evicting the oldest line when full.
    pub fn record(&mut self, now: SimTime, node: NodeId, line: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        if self.lines.len() == self.capacity {
            self.lines.pop_front();
        }
        self.lines.push_back(format!("[{now} {node}] {}", line()));
    }

    /// The retained lines, oldest first.
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.lines.iter().map(String::as_str)
    }

    /// Renders the retained lines joined by newlines.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// An FNV-1a digest of the retained lines, for cheap equality checks in
    /// determinism tests (two runs with the same seed must produce the same
    /// digest).
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for line in &self.lines {
            for b in line.as_bytes() {
                h = (h ^ u64::from(*b)).wrapping_mul(0x100000001b3);
            }
            h = (h ^ u64::from(b'\n')).wrapping_mul(0x100000001b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::default();
        t.record(SimTime::ZERO, NodeId(1), || "should not appear".into());
        assert_eq!(t.lines().count(), 0);
    }

    #[test]
    fn enabled_trace_records_with_context() {
        let mut t = Trace::default();
        t.set_enabled(true);
        t.record(SimTime::from_millis(1), NodeId(2), || "hello".into());
        let dump = t.dump();
        assert!(dump.contains("hello"), "{dump}");
        assert!(dump.contains("n2"), "{dump}");
    }

    #[test]
    fn digest_is_stable_across_clone_and_sensitive_to_content() {
        let mut t = Trace::default();
        t.set_enabled(true);
        t.record(SimTime::from_millis(1), NodeId(2), || "alpha".into());
        t.record(SimTime::from_millis(2), NodeId(3), || "beta".into());
        let cloned = t.clone();
        assert_eq!(t.digest(), cloned.digest(), "clone must hash identically");
        let mut extended = t.clone();
        extended.record(SimTime::from_millis(3), NodeId(2), || "gamma".into());
        assert_ne!(t.digest(), extended.digest());
    }

    #[test]
    fn trace_is_bounded() {
        let mut t = Trace::with_capacity(3);
        t.set_enabled(true);
        for i in 0..10 {
            t.record(SimTime::ZERO, NodeId(1), || format!("line{i}"));
        }
        let lines: Vec<_> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("line7"));
        assert!(lines[2].contains("line9"));
    }
}
