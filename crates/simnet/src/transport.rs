//! Real-world backends for the actor runtime: wall clocks, TCP transport
//! and file-backed stable storage.
//!
//! The simulator ([`crate::Sim`]) *is* the clock, network and disk of the
//! actors it hosts. To run the identical actors as a real process, the
//! [`crate::runtime::NodeRuntime`] drives them through three narrow traits
//! instead:
//!
//! * [`Clock`] — a monotonic source of [`SimTime`] instants;
//! * [`Transport`] — an unreliable, unordered-across-peers datagram-style
//!   frame carrier (TCP per peer pair, so FIFO per live connection, but no
//!   guarantees across reconnects — exactly the delivery model the actors
//!   already tolerate from the simulated network);
//! * [`StorageBackend`] — a durable write-through sink for [`StableStore`]
//!   mutations, read back in full at process start.
//!
//! Three transport implementations ship here: [`TcpTransport`]
//! (length-prefixed frames over `std::net` TCP with reconnect-and-backoff),
//! [`ChannelTransport`] (in-process channels, for tests), and the trivial
//! [`NullTransport`]. Storage comes as [`FileStorage`] (log-structured:
//! append-only write-ahead log plus compacted snapshot) or [`MemStorage`]
//! (volatile). See `DESIGN.md` §12 for the exact contracts actors rely on.
//!
//! An async runtime (e.g. tokio) can slot in behind the same traits; the
//! thread-per-connection implementation here was chosen because it needs
//! nothing outside `std`.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::sim::NodeId;
use crate::storage::StableStore;
use crate::telemetry::{Counter, Gauge, HistogramHandle, Registry};
use crate::time::SimTime;
use crate::wire::crc32c;

/// A monotonic time source handing out [`SimTime`] instants.
///
/// The runtime timestamps every callback with `now()`, so actors keep their
/// (virtual-time) `SimTime` signatures unchanged whether a run is simulated
/// or real. Implementations must be monotonic: `now()` never decreases.
pub trait Clock: Send {
    /// The current instant.
    fn now(&self) -> SimTime;
}

/// A [`Clock`] that maps wall time onto [`SimTime`], microsecond for
/// microsecond, counting from a fixed origin.
///
/// Copies share the origin, so several runtimes (e.g. one per client
/// thread) constructed from the same `WallClock` produce directly
/// comparable timestamps.
#[derive(Copy, Clone, Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose `SimTime::ZERO` is now.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.origin.elapsed().as_micros() as u64)
    }
}

/// A hand-cranked [`Clock`] for runtime unit tests: time only moves when
/// the test calls [`ManualClock::advance`]. Handles are cheap clones
/// sharing one counter.
#[derive(Clone, Debug, Default)]
pub struct ManualClock {
    micros: Arc<std::sync::atomic::AtomicU64>,
}

impl ManualClock {
    /// A clock stopped at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the clock forward by `us` microseconds.
    pub fn advance(&self, us: u64) {
        self.micros.fetch_add(us, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.micros.load(Ordering::SeqCst))
    }
}

/// What a [`Transport::poll`] call can surface.
#[derive(Clone, Debug)]
pub enum TransportEvent {
    /// A complete frame arrived from `from`.
    Frame {
        /// The sending node, learned from the connection handshake.
        from: NodeId,
        /// The frame payload (length prefix already stripped).
        payload: Vec<u8>,
    },
    /// A connection to `peer` was established (outbound or inbound).
    PeerConnected(NodeId),
    /// The connection to `peer` was lost. Outbound connections reconnect
    /// with backoff automatically; frames sent in the meantime are dropped,
    /// as on a real network.
    PeerDisconnected(NodeId),
}

/// A best-effort frame carrier between named nodes.
///
/// The contract is deliberately no stronger than the simulated network's:
/// frames may be dropped (full queue, dead peer) and there is no ordering
/// across peers — only per-peer FIFO while a single connection lasts.
/// Actors built for `simnet` therefore run unchanged on any implementation.
pub trait Transport: Send {
    /// Queues `payload` for delivery to `to`. Returns `false` when the
    /// frame was dropped immediately (unknown peer or full queue); `true`
    /// means *queued*, not delivered — delivery remains best-effort.
    fn send(&mut self, to: NodeId, payload: Vec<u8>) -> bool;

    /// Waits up to `timeout` for the next event. `None` on timeout.
    fn poll(&mut self, timeout: Duration) -> Option<TransportEvent>;

    /// The local listening address, when the transport has one.
    fn local_addr(&self) -> Option<SocketAddr> {
        None
    }
}

impl Transport for Box<dyn Transport> {
    fn send(&mut self, to: NodeId, payload: Vec<u8>) -> bool {
        (**self).send(to, payload)
    }
    fn poll(&mut self, timeout: Duration) -> Option<TransportEvent> {
        (**self).poll(timeout)
    }
    fn local_addr(&self) -> Option<SocketAddr> {
        (**self).local_addr()
    }
}

/// A [`Transport`] connected to nothing: every send is dropped, every poll
/// times out. Useful for single-node smoke tests.
#[derive(Default)]
pub struct NullTransport;

impl Transport for NullTransport {
    fn send(&mut self, _to: NodeId, _payload: Vec<u8>) -> bool {
        false
    }
    fn poll(&mut self, timeout: Duration) -> Option<TransportEvent> {
        std::thread::sleep(timeout);
        None
    }
}

/// Durable write-through storage behind a [`StableStore`].
///
/// The runtime loads the full store once at start, then applies every
/// mutated key after each actor callback *before* any frame emitted by that
/// callback is visible to peers — the write-ahead discipline Paxos
/// acceptors rely on.
pub trait StorageBackend: Send {
    /// Reads the complete persisted state (empty store on first boot).
    fn load(&mut self) -> io::Result<StableStore>;

    /// Persists one key: `Some` overwrites, `None` deletes.
    fn apply(&mut self, key: &str, value: Option<&[u8]>) -> io::Result<()>;

    /// Makes all prior [`StorageBackend::apply`] calls durable (e.g. fsync
    /// of the directory). Called once per batch of applies.
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl StorageBackend for Box<dyn StorageBackend> {
    fn load(&mut self) -> io::Result<StableStore> {
        (**self).load()
    }
    fn apply(&mut self, key: &str, value: Option<&[u8]>) -> io::Result<()> {
        (**self).apply(key, value)
    }
    fn sync(&mut self) -> io::Result<()> {
        (**self).sync()
    }
}

/// A [`StorageBackend`] that persists nothing — state lives only in the
/// in-memory [`StableStore`]. For tests and throwaway runs.
#[derive(Default)]
pub struct MemStorage;

impl StorageBackend for MemStorage {
    fn load(&mut self) -> io::Result<StableStore> {
        Ok(StableStore::new())
    }
    fn apply(&mut self, _key: &str, _value: Option<&[u8]>) -> io::Result<()> {
        Ok(())
    }
}

/// A fault-injecting [`Transport`] decorator for chaos tests against the
/// real backend: drops, duplicates, truncates or bit-flips outgoing
/// payloads with seeded probabilities *before* the inner transport frames
/// them.
///
/// Because the mangling happens before [`encode_frame`] computes the
/// frame CRC, an injected flip arrives with a *valid* frame checksum —
/// this wrapper models a corrupted sender (bad RAM, a buggy peer), and
/// exercises the wire-codec robustness layer (`rt.decode_errors`), not
/// the link-integrity layer. Post-CRC link corruption is injected
/// separately via [`TcpConfig::corrupt_frame`].
pub struct FaultyTransport<T: Transport> {
    inner: T,
    rng: crate::rng::SimRng,
    drop_rate: f64,
    duplicate_rate: f64,
    corrupt_rate: f64,
    truncate_rate: f64,
    injected: u64,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with no faults enabled; the draw order is fixed by
    /// `seed`, so a given send sequence injects identically every run.
    pub fn new(inner: T, seed: u64) -> Self {
        FaultyTransport {
            inner,
            rng: crate::rng::SimRng::seed_from_u64(seed ^ 0xFA_017_BAD),
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            corrupt_rate: 0.0,
            truncate_rate: 0.0,
            injected: 0,
        }
    }

    /// Probability in `[0, 1]` that a send is silently dropped.
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Probability in `[0, 1]` that a send goes out twice.
    pub fn with_duplicate_rate(mut self, rate: f64) -> Self {
        self.duplicate_rate = rate;
        self
    }

    /// Probability in `[0, 1]` that one payload bit is flipped.
    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate;
        self
    }

    /// Probability in `[0, 1]` that the payload tail is chopped off.
    pub fn with_truncate_rate(mut self, rate: f64) -> Self {
        self.truncate_rate = rate;
        self
    }

    /// Faults injected so far (drops + duplicates + corruptions +
    /// truncations).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The wrapped transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, to: NodeId, mut payload: Vec<u8>) -> bool {
        if self.drop_rate > 0.0 && self.rng.gen_bool(self.drop_rate.clamp(0.0, 1.0)) {
            self.injected += 1;
            return true; // "queued", then lost — exactly what callers tolerate
        }
        if !payload.is_empty()
            && self.truncate_rate > 0.0
            && self.rng.gen_bool(self.truncate_rate.clamp(0.0, 1.0))
        {
            let keep = self.rng.gen_range(0..payload.len());
            payload.truncate(keep);
            self.injected += 1;
        }
        if !payload.is_empty()
            && self.corrupt_rate > 0.0
            && self.rng.gen_bool(self.corrupt_rate.clamp(0.0, 1.0))
        {
            let byte = self.rng.gen_range(0..payload.len());
            let bit = self.rng.gen_range(0..8u32);
            payload[byte] ^= 1 << bit;
            self.injected += 1;
        }
        if self.duplicate_rate > 0.0 && self.rng.gen_bool(self.duplicate_rate.clamp(0.0, 1.0)) {
            self.injected += 1;
            let _ = self.inner.send(to, payload.clone());
        }
        self.inner.send(to, payload)
    }

    fn poll(&mut self, timeout: Duration) -> Option<TransportEvent> {
        self.inner.poll(timeout)
    }

    fn local_addr(&self) -> Option<SocketAddr> {
        self.inner.local_addr()
    }
}

/// A fault-injecting [`StorageBackend`] decorator: models a disk whose
/// fsync lies — [`StorageBackend::sync`] reports success without flushing
/// anything — for a scripted number of calls. Used to prove recovery
/// stays consistent (a truncated-prefix state, never a corrupt one) when
/// acknowledged writes turn out not to be durable.
pub struct FaultyStorage<S: StorageBackend> {
    inner: S,
    lie_syncs: u64,
    lied: u64,
}

impl<S: StorageBackend> FaultyStorage<S> {
    /// Wraps `inner` with honest syncs.
    pub fn new(inner: S) -> Self {
        FaultyStorage {
            inner,
            lie_syncs: 0,
            lied: 0,
        }
    }

    /// The next `n` [`StorageBackend::sync`] calls return `Ok` without
    /// touching the inner backend.
    pub fn lie_on_syncs(mut self, n: u64) -> Self {
        self.lie_syncs = n;
        self
    }

    /// Syncs lied about so far.
    pub fn lied(&self) -> u64 {
        self.lied
    }

    /// The wrapped backend.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: StorageBackend> StorageBackend for FaultyStorage<S> {
    fn load(&mut self) -> io::Result<StableStore> {
        self.inner.load()
    }
    fn apply(&mut self, key: &str, value: Option<&[u8]>) -> io::Result<()> {
        self.inner.apply(key, value)
    }
    fn sync(&mut self) -> io::Result<()> {
        if self.lie_syncs > 0 {
            self.lie_syncs -= 1;
            self.lied += 1;
            return Ok(());
        }
        self.inner.sync()
    }
}

/// Log-structured durable storage: an append-only write-ahead log
/// (`wal`) plus a compacted `snapshot`, both in one directory.
///
/// Every [`StorageBackend::apply`] appends one record to the log — no
/// per-key files, so a commit costs a buffered write rather than a
/// create/rename pair. [`StorageBackend::sync`] flushes the batch to the
/// OS (and, with `fsync`, to the device). [`StorageBackend::load`]
/// replays snapshot then log, tolerating a torn tail record from a crash
/// mid-append, and folds the result into a fresh snapshot. When the log
/// outgrows [`FileStorage::COMPACT_SLACK`] it is folded during a sync
/// instead of waiting for the next boot.
///
/// Exactly one live handle may own a directory: two appenders would
/// interleave their logs. The runtime enforces this by construction (one
/// replica process per storage dir).
pub struct FileStorage {
    dir: PathBuf,
    wal: io::BufWriter<std::fs::File>,
    wal_bytes: u64,
    /// Full current state, mirrored so compaction can rewrite the
    /// snapshot without consulting the runtime's store.
    mirror: StableStore,
    /// True once `load` ran; compaction before that would drop the
    /// un-replayed prefix.
    loaded: bool,
    fsync: bool,
    /// Group commit: defer device syncs so at most one fsync happens per
    /// window. Zero (the default) syncs on every [`StorageBackend::sync`].
    sync_window: std::time::Duration,
    /// When the last device sync completed (group-commit bookkeeping).
    last_fsync: Option<std::time::Instant>,
    /// Bytes were flushed to the OS but not yet synced to the device.
    pending_sync: bool,
    /// Device syncs issued on the WAL (observability for tests).
    fsyncs: u64,
    /// Records rejected by the CRC/framing check at load time.
    corrupt_records: u64,
    /// Telemetry handles, when a registry was attached.
    stats: Option<StorageStats>,
}

/// The `storage.*` telemetry handles of one [`FileStorage`] (DESIGN §9).
/// Timings use the wall clock — this backend only runs in real processes,
/// so determinism is not at stake.
struct StorageStats {
    /// Bytes appended to the WAL per record.
    wal_append_bytes: HistogramHandle,
    /// Device sync latency, µs.
    fsync_us: HistogramHandle,
    /// Snapshot fold duration, µs.
    compaction_us: HistogramHandle,
    /// `sync()` batches folded into each device sync — the group-commit
    /// window fill (1 = no batching happened).
    group_commit_fill: HistogramHandle,
    /// Records rejected at load time by a CRC/framing check (WAL or
    /// snapshot). Registered eagerly so the series exposes as `0` on a
    /// healthy node instead of being absent.
    wal_corrupt_records: Counter,
    /// Batches deferred so far in the current window.
    window_syncs: u64,
}

impl StorageStats {
    fn new(registry: &Registry) -> Self {
        StorageStats {
            wal_append_bytes: registry.histogram("storage.wal_append_bytes"),
            fsync_us: registry.histogram("storage.fsync_us"),
            compaction_us: registry.histogram("storage.compaction_us"),
            group_commit_fill: registry.histogram("storage.group_commit_fill"),
            wal_corrupt_records: registry.counter("storage.wal_corrupt_records"),
            window_syncs: 0,
        }
    }
}

const WAL_PUT: u8 = 1;
const WAL_DEL: u8 = 2;

impl FileStorage {
    /// Fold the log into the snapshot once it exceeds this many bytes.
    pub const COMPACT_SLACK: u64 = 4 << 20;

    /// Opens (creating if needed) the storage directory.
    pub fn open(dir: impl Into<PathBuf>, fsync: bool) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let wal_path = dir.join("wal");
        let wal = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)?;
        let wal_bytes = wal.metadata()?.len();
        Ok(FileStorage {
            dir,
            wal: io::BufWriter::new(wal),
            wal_bytes,
            mirror: StableStore::new(),
            loaded: false,
            fsync,
            sync_window: std::time::Duration::ZERO,
            last_fsync: None,
            pending_sync: false,
            fsyncs: 0,
            corrupt_records: 0,
            stats: None,
        })
    }

    /// Enables group commit: [`StorageBackend::sync`] still flushes every
    /// batch to the OS, but issues at most one device sync per `window`.
    /// Widens the durability window to at most `window` of acknowledged
    /// writes on power loss (see OPERATIONS.md); a plain process crash
    /// loses nothing because the OS holds the flushed bytes. No effect
    /// when `fsync` is off.
    pub fn with_sync_window(mut self, window: std::time::Duration) -> Self {
        self.sync_window = window;
        self
    }

    /// Publishes this store's `storage.*` series (WAL append bytes, fsync
    /// latency, compaction duration, group-commit window fill) into
    /// `registry`.
    pub fn with_telemetry(mut self, registry: &Registry) -> Self {
        self.stats = Some(StorageStats::new(registry));
        self
    }

    /// Device syncs issued on the WAL so far.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Records rejected by the CRC/framing check during
    /// [`StorageBackend::load`] (WAL plus snapshot). Non-zero means the
    /// log was truncated at the first bad record — state up to that point
    /// was recovered, nothing corrupt was applied.
    pub fn corrupt_records(&self) -> u64 {
        self.corrupt_records
    }

    /// The storage directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn encode_record(buf: &mut Vec<u8>, key: &str, value: Option<&[u8]>) {
        let start = buf.len();
        match value {
            Some(v) => {
                buf.push(WAL_PUT);
                buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
                buf.extend_from_slice(key.as_bytes());
                buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
                buf.extend_from_slice(v);
            }
            None => {
                buf.push(WAL_DEL);
                buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
                buf.extend_from_slice(key.as_bytes());
            }
        }
        // Per-record CRC-32C over everything from the tag on: a flipped
        // bit anywhere in the record (or its trailer) fails verification
        // at replay, and the log is truncated there instead of applying
        // corrupted state.
        let crc = crc32c::checksum(&buf[start..]);
        buf.extend_from_slice(&crc.to_le_bytes());
    }

    /// Replays `bytes` onto `store`, stopping at the first incomplete,
    /// unknown or checksum-failing record. Returns the number of *corrupt*
    /// records detected (complete framing whose CRC or tag check failed) —
    /// a plain torn tail from a crash mid-append counts zero. Replay is a
    /// last-write-wins fold, so replaying a log that was already folded
    /// into the snapshot converges to the same state.
    fn replay(bytes: &[u8], store: &mut StableStore) -> u64 {
        let mut rest = bytes;
        loop {
            let take = |rest: &mut &[u8], n: usize| -> Option<Vec<u8>> {
                (rest.len() >= n).then(|| {
                    let (head, tail) = rest.split_at(n);
                    *rest = tail;
                    head.to_vec()
                })
            };
            let mut cursor = rest;
            let Some(tag) = take(&mut cursor, 1) else {
                return 0; // clean end of log
            };
            let Some(klen) = take(&mut cursor, 4) else {
                return 0;
            };
            let klen = u32::from_le_bytes(klen.try_into().unwrap()) as usize;
            let Some(key) = take(&mut cursor, klen) else {
                return 0;
            };
            let value = match tag[0] {
                WAL_PUT => {
                    let Some(vlen) = take(&mut cursor, 4) else {
                        return 0;
                    };
                    let vlen = u32::from_le_bytes(vlen.try_into().unwrap()) as usize;
                    let Some(value) = take(&mut cursor, vlen) else {
                        return 0;
                    };
                    Some(value)
                }
                WAL_DEL => None,
                // A complete-looking record with an unknown tag is
                // corruption, not a torn tail.
                _ => return 1,
            };
            let Some(crc) = take(&mut cursor, 4) else {
                return 0; // trailer torn off mid-append
            };
            let expected = u32::from_le_bytes(crc.try_into().unwrap());
            let body_len = rest.len() - cursor.len() - 4;
            if crc32c::checksum(&rest[..body_len]) != expected {
                return 1;
            }
            // CRC passed, so the key bytes are exactly what the writer
            // framed; non-UTF-8 here means a writer bug, not bit rot.
            let Ok(key) = String::from_utf8(key) else {
                return 1;
            };
            match value {
                Some(v) => store.put(&key, v),
                None => {
                    store.remove(&key);
                }
            }
            rest = cursor;
        }
    }

    /// Writes the mirror as a fresh snapshot (atomic rename) and truncates
    /// the log.
    fn compact(&mut self) -> io::Result<()> {
        let started = Instant::now();
        let mut buf = Vec::new();
        for (key, value) in self.mirror.entries() {
            Self::encode_record(&mut buf, key, Some(value));
        }
        let tmp = self.dir.join("snapshot.tmp");
        let snapshot = self.dir.join("snapshot");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            if self.fsync {
                f.sync_all()?;
            }
        }
        std::fs::rename(&tmp, &snapshot)?;
        // A crash here leaves the new snapshot plus the already-folded
        // log; replaying it again is a no-op fold.
        self.wal = io::BufWriter::new(std::fs::File::create(self.dir.join("wal"))?);
        self.wal_bytes = 0;
        if self.fsync {
            std::fs::File::open(&self.dir)?.sync_all()?;
        }
        // Everything deferred is folded into the just-synced snapshot.
        self.pending_sync = false;
        if let Some(s) = &self.stats {
            s.compaction_us.record(started.elapsed().as_micros() as u64);
        }
        Ok(())
    }
}

impl StorageBackend for FileStorage {
    fn load(&mut self) -> io::Result<StableStore> {
        let mut store = StableStore::new();
        let mut corrupt = 0;
        match std::fs::read(self.dir.join("snapshot")) {
            Ok(bytes) => corrupt += Self::replay(&bytes, &mut store),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        match std::fs::read(self.dir.join("wal")) {
            Ok(bytes) => corrupt += Self::replay(&bytes, &mut store),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        self.corrupt_records += corrupt;
        if let Some(s) = &self.stats {
            s.wal_corrupt_records.add(corrupt);
        }
        self.mirror = store.clone();
        self.loaded = true;
        self.compact()?;
        Ok(store)
    }

    fn apply(&mut self, key: &str, value: Option<&[u8]>) -> io::Result<()> {
        let mut buf = Vec::with_capacity(key.len() + value.map_or(0, <[u8]>::len) + 9);
        Self::encode_record(&mut buf, key, value);
        self.wal.write_all(&buf)?;
        self.wal_bytes += buf.len() as u64;
        if let Some(s) = &self.stats {
            s.wal_append_bytes.record(buf.len() as u64);
        }
        match value {
            Some(v) => self.mirror.put(key, v.to_vec()),
            None => {
                self.mirror.remove(key);
            }
        }
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.wal.flush()?;
        if self.fsync {
            let due = self.sync_window.is_zero()
                || self
                    .last_fsync
                    .is_none_or(|at| at.elapsed() >= self.sync_window);
            if due {
                let started = Instant::now();
                self.wal.get_ref().sync_data()?;
                let done = Instant::now();
                self.fsyncs += 1;
                self.last_fsync = Some(done);
                self.pending_sync = false;
                if let Some(s) = &mut self.stats {
                    s.fsync_us
                        .record(done.duration_since(started).as_micros() as u64);
                    s.group_commit_fill.record(s.window_syncs + 1);
                    s.window_syncs = 0;
                }
            } else {
                // Group commit: the bytes are flushed to the OS; the
                // device sync rides with a later batch in this window.
                self.pending_sync = true;
                if let Some(s) = &mut self.stats {
                    s.window_syncs += 1;
                }
            }
        }
        if self.loaded && self.wal_bytes > Self::COMPACT_SLACK {
            self.compact()?;
        }
        Ok(())
    }
}

impl Drop for FileStorage {
    /// Close the durability window on clean shutdown: sync any writes
    /// whose device sync was deferred by group commit.
    fn drop(&mut self) {
        if self.fsync && self.pending_sync {
            let _ = self.wal.flush();
            if self.wal.get_ref().sync_data().is_ok() {
                self.fsyncs += 1;
            }
        }
    }
}

/// Error raised by [`FrameBuffer::next_frame`] when the stream is
/// unrecoverable past this point: the length prefix exceeds the configured
/// maximum, or the frame's CRC-32C trailer does not match its payload.
/// Either way the connection must be killed — once framing is suspect,
/// nothing downstream of this byte can be trusted.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The length announced by the prefix exceeds the configured maximum.
    TooBig {
        /// The length announced by the prefix.
        len: u32,
        /// The configured maximum.
        max: u32,
    },
    /// The payload's CRC-32C does not match the frame trailer.
    Corrupt {
        /// The checksum carried in the frame trailer.
        expected: u32,
        /// The checksum computed over the received payload.
        found: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooBig { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Corrupt { expected, found } => write!(
                f,
                "frame checksum mismatch: trailer {expected:#010x}, payload {found:#010x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Wraps a payload in the wire framing: a little-endian `u32` length prefix,
/// the payload bytes, and a little-endian CRC-32C of the payload. The
/// receiving [`FrameBuffer`] verifies the checksum before a single payload
/// byte is surfaced, so corruption on the wire is always *detected*, never
/// silently decoded.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32c::checksum(payload).to_le_bytes());
    out
}

/// Incremental decoder for length-prefixed, checksummed frames.
///
/// Feed arbitrary byte chunks (as they arrive from a socket) with
/// [`FrameBuffer::extend`]; pull complete frames with
/// [`FrameBuffer::next_frame`]. Partial reads — a length prefix split
/// across reads, a payload arriving byte by byte — reassemble correctly.
/// Every completed frame has its CRC-32C trailer verified before it is
/// returned.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    max_frame: u32,
}

impl FrameBuffer {
    /// A buffer rejecting frames longer than `max_frame` bytes.
    pub fn new(max_frame: u32) -> Self {
        FrameBuffer {
            buf: Vec::new(),
            max_frame,
        }
    }

    /// Appends raw bytes read from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete, checksum-verified frame; `Ok(None)` when
    /// more bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes"));
        if len > self.max_frame {
            return Err(FrameError::TooBig {
                len,
                max: self.max_frame,
            });
        }
        let total = 4 + len as usize + 4;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = &self.buf[4..4 + len as usize];
        let expected = u32::from_le_bytes(self.buf[total - 4..total].try_into().expect("4 bytes"));
        let found = crc32c::checksum(payload);
        if expected != found {
            return Err(FrameError::Corrupt { expected, found });
        }
        let frame = payload.to_vec();
        self.buf.drain(..total);
        Ok(Some(frame))
    }

    /// Bytes currently buffered (for tests and diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

/// An in-process [`Transport`] over channels: every endpoint created from
/// the same [`ChannelHub`] can frame bytes to every other. Delivery is
/// reliable and FIFO — a convenient harness for runtime tests that do not
/// need sockets.
#[derive(Clone, Default)]
pub struct ChannelHub {
    peers: Arc<Mutex<HashMap<NodeId, Sender<TransportEvent>>>>,
}

impl ChannelHub {
    /// An empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `me` and returns its endpoint. Re-registering an id
    /// replaces the previous endpoint (its receiver starts missing frames).
    pub fn endpoint(&self, me: NodeId) -> ChannelTransport {
        let (tx, rx) = mpsc::channel();
        lock(&self.peers).insert(me, tx);
        ChannelTransport {
            me,
            peers: Arc::clone(&self.peers),
            rx,
        }
    }
}

/// One endpoint of a [`ChannelHub`].
pub struct ChannelTransport {
    me: NodeId,
    peers: Arc<Mutex<HashMap<NodeId, Sender<TransportEvent>>>>,
    rx: Receiver<TransportEvent>,
}

impl Transport for ChannelTransport {
    fn send(&mut self, to: NodeId, payload: Vec<u8>) -> bool {
        let Some(tx) = lock(&self.peers).get(&to).cloned() else {
            return false;
        };
        tx.send(TransportEvent::Frame {
            from: self.me,
            payload,
        })
        .is_ok()
    }

    fn poll(&mut self, timeout: Duration) -> Option<TransportEvent> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// Configuration for [`TcpTransport::bind`].
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// This node's id, announced in the connection handshake.
    pub me: NodeId,
    /// Address to accept inbound connections on; `None` for pure clients.
    pub listen: Option<SocketAddr>,
    /// Peers to keep an outbound connection to (reconnecting with backoff).
    pub peers: Vec<(NodeId, SocketAddr)>,
    /// First reconnect delay; doubles per attempt up to `reconnect_max`.
    pub reconnect_min: Duration,
    /// Reconnect delay ceiling.
    pub reconnect_max: Duration,
    /// Per-peer egress queue capacity, in frames; sends beyond it drop.
    pub queue_capacity: usize,
    /// Largest accepted frame payload, bytes.
    pub max_frame: u32,
    /// Registry to publish the transport's `net.*` series into (DESIGN
    /// §9); `None` records nothing.
    pub telemetry: Option<Registry>,
    /// Fault injection: 0-based indices (in send order, across all peers)
    /// of outgoing frames whose bytes are bit-flipped *after* the CRC
    /// trailer is computed — i.e. genuine link corruption. The receiver
    /// must detect the mismatch, bump `net.frame_errors` and kill the
    /// connection.
    pub corrupt_frames: Vec<u64>,
}

impl TcpConfig {
    /// A config for node `me` with sensible localhost defaults.
    pub fn new(me: NodeId) -> Self {
        TcpConfig {
            me,
            listen: None,
            peers: Vec::new(),
            reconnect_min: Duration::from_millis(50),
            reconnect_max: Duration::from_secs(2),
            queue_capacity: 4096,
            max_frame: 64 << 20,
            telemetry: None,
            corrupt_frames: Vec::new(),
        }
    }

    /// Sets the listen address.
    pub fn listen(mut self, addr: SocketAddr) -> Self {
        self.listen = Some(addr);
        self
    }

    /// Adds an outbound peer.
    pub fn peer(mut self, id: NodeId, addr: SocketAddr) -> Self {
        self.peers.push((id, addr));
        self
    }

    /// Publishes the transport's `net.*` series (per-peer queue occupancy,
    /// coalesced write sizes, reconnects, frame errors) into `registry`.
    pub fn telemetry(mut self, registry: Registry) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// Injects link corruption into the `n`-th outgoing frame (0-based,
    /// counted across all peers in send order): one bit of the framed
    /// bytes is flipped after the CRC trailer is computed.
    pub fn corrupt_frame(mut self, n: u64) -> Self {
        self.corrupt_frames.push(n);
        self
    }
}

/// The `net.*` telemetry handles shared by a [`TcpTransport`]'s threads.
#[derive(Clone)]
struct NetStats {
    /// Outbound connections re-established after a break.
    reconnects: Counter,
    /// Connections killed by an oversized/corrupt length prefix.
    frame_errors: Counter,
    /// Frames dropped at send time (unknown peer or full queue).
    dropped_frames: Counter,
    /// Bytes per coalesced write syscall.
    coalesced_write_bytes: HistogramHandle,
}

impl NetStats {
    fn new(registry: &Registry) -> Self {
        NetStats {
            reconnects: registry.counter("net.reconnects"),
            frame_errors: registry.counter("net.frame_errors"),
            dropped_frames: registry.counter("net.dropped_frames"),
            coalesced_write_bytes: registry.histogram("net.coalesced_write_bytes"),
        }
    }
}

/// Occupancy gauges for one configured peer's egress queue: incremented
/// by [`Transport::send`], decremented as the writer thread drains.
#[derive(Clone)]
struct QueueGauges {
    depth: Gauge,
    bytes: Gauge,
}

impl QueueGauges {
    fn new(registry: &Registry, peer: NodeId) -> Self {
        QueueGauges {
            depth: registry.gauge(&format!("net.outbound_queue_depth{{peer=\"{peer}\"}}")),
            bytes: registry.gauge(&format!("net.outbound_queue_bytes{{peer=\"{peer}\"}}")),
        }
    }
}

const MAGIC: [u8; 4] = *b"RSMR";
const VERSION: u16 = 1;
/// How long blocking socket reads wait before re-checking the stop flag.
const READ_SLICE: Duration = Duration::from_millis(100);
/// How long writer threads wait for the next frame before re-checking stop.
const WRITE_SLICE: Duration = Duration::from_millis(100);

type InboundMap = Arc<Mutex<HashMap<NodeId, (u64, SyncSender<Vec<u8>>)>>>;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The connection handshake: magic, protocol version, sender's node id.
fn write_hello(stream: &mut TcpStream, me: NodeId) -> io::Result<()> {
    let mut hello = [0u8; 14];
    hello[..4].copy_from_slice(&MAGIC);
    hello[4..6].copy_from_slice(&VERSION.to_le_bytes());
    hello[6..14].copy_from_slice(&me.0.to_le_bytes());
    stream.write_all(&hello)
}

fn read_hello(stream: &mut TcpStream) -> io::Result<NodeId> {
    let mut hello = [0u8; 14];
    stream.read_exact(&mut hello)?;
    if hello[..4] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = u16::from_le_bytes(hello[4..6].try_into().expect("2 bytes"));
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("protocol version {version} != {VERSION}"),
        ));
    }
    Ok(NodeId(u64::from_le_bytes(
        hello[6..14].try_into().expect("8 bytes"),
    )))
}

/// A [`Transport`] over real TCP sockets.
///
/// * **Framing**: `u32` little-endian length prefix + payload + CRC-32C
///   trailer (see [`encode_frame`]), preceded on every connection by a
///   14-byte handshake (`"RSMR"`, version, sender id). A frame whose
///   checksum fails verification kills the connection and bumps
///   `net.frame_errors` — corrupted bytes are never surfaced.
/// * **Topology**: one outbound connection per configured peer, kept alive
///   by a reconnect loop with exponential backoff; inbound connections
///   from *unconfigured* nodes (clients) get a reply path registered
///   automatically, so servers can answer nodes they were never told
///   about.
/// * **Threads**: one acceptor, one writer per peer, one reader per live
///   connection. All terminate promptly on drop.
/// * **Loss model**: a full egress queue or a down peer drops frames —
///   callers must already tolerate loss, and every simnet actor does.
pub struct TcpTransport {
    me: NodeId,
    local: Option<SocketAddr>,
    events_rx: Receiver<TransportEvent>,
    outbound: HashMap<NodeId, SyncSender<Vec<u8>>>,
    inbound: InboundMap,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    /// Frames dropped at send time (unknown peer or full queue).
    dropped: u64,
    /// Shared telemetry handles, when a registry was attached.
    stats: Option<NetStats>,
    /// Per-configured-peer egress queue gauges.
    queue_gauges: HashMap<NodeId, QueueGauges>,
    /// Outgoing frames framed so far (the fault injector's clock).
    sent_frames: u64,
    /// Send-order indices of frames to bit-flip post-CRC.
    corrupt_frames: std::collections::BTreeSet<u64>,
}

impl TcpTransport {
    /// Starts the transport: binds the listener (if any) and spawns the
    /// per-peer connector threads.
    pub fn bind(cfg: TcpConfig) -> io::Result<Self> {
        let (events_tx, events_rx) = mpsc::channel::<TransportEvent>();
        let stop = Arc::new(AtomicBool::new(false));
        let inbound: InboundMap = Arc::new(Mutex::new(HashMap::new()));
        let mut threads = Vec::new();
        let stats = cfg.telemetry.as_ref().map(NetStats::new);

        let local = match cfg.listen {
            Some(addr) => {
                let listener = TcpListener::bind(addr)?;
                let local = listener.local_addr()?;
                let acceptor = Acceptor {
                    events: events_tx.clone(),
                    inbound: Arc::clone(&inbound),
                    stop: Arc::clone(&stop),
                    queue_capacity: cfg.queue_capacity,
                    max_frame: cfg.max_frame,
                    frame_errors: stats.as_ref().map(|s| s.frame_errors.clone()),
                };
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("rsmr-accept-{}", cfg.me))
                        .spawn(move || acceptor.run(listener))?,
                );
                Some(local)
            }
            None => None,
        };

        let mut outbound = HashMap::new();
        let mut queue_gauges = HashMap::new();
        for &(peer, addr) in &cfg.peers {
            if peer == cfg.me {
                continue;
            }
            let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(cfg.queue_capacity);
            outbound.insert(peer, tx);
            let gauges = cfg.telemetry.as_ref().map(|r| QueueGauges::new(r, peer));
            if let Some(g) = &gauges {
                queue_gauges.insert(peer, g.clone());
            }
            let conn = Connector {
                me: cfg.me,
                peer,
                addr,
                events: events_tx.clone(),
                stop: Arc::clone(&stop),
                reconnect_min: cfg.reconnect_min,
                reconnect_max: cfg.reconnect_max,
                max_frame: cfg.max_frame,
                stats: stats.clone(),
                gauges,
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rsmr-conn-{}-{}", cfg.me, peer))
                    .spawn(move || conn.run(rx))?,
            );
        }

        Ok(TcpTransport {
            me: cfg.me,
            local,
            events_rx,
            outbound,
            inbound,
            stop,
            threads,
            dropped: 0,
            stats,
            queue_gauges,
            sent_frames: 0,
            corrupt_frames: cfg.corrupt_frames.iter().copied().collect(),
        })
    }

    /// The node id this transport announces in handshakes.
    pub fn node_id(&self) -> NodeId {
        self.me
    }

    /// Frames dropped at send time so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, to: NodeId, payload: Vec<u8>) -> bool {
        let mut frame = encode_frame(&payload);
        let idx = self.sent_frames;
        self.sent_frames += 1;
        if self.corrupt_frames.remove(&idx) {
            // Scripted link corruption: flip a bit past the length prefix
            // (the first payload byte, or the CRC trailer for an empty
            // payload) so the receiver sees a checksum mismatch rather
            // than a desynced stream.
            frame[4] ^= 0x01;
        }
        let frame_len = frame.len() as u64;
        // Configured peers go through their connector's queue; anyone else
        // must have connected to us (a client), giving us a reply path.
        let tx = match self.outbound.get(&to) {
            Some(tx) => tx.clone(),
            None => match lock(&self.inbound).get(&to) {
                Some((_, tx)) => tx.clone(),
                None => {
                    self.dropped += 1;
                    if let Some(s) = &self.stats {
                        s.dropped_frames.add(1);
                    }
                    return false;
                }
            },
        };
        match tx.try_send(frame) {
            Ok(()) => {
                if let Some(g) = self.queue_gauges.get(&to) {
                    g.depth.add(1);
                    g.bytes.add(frame_len);
                }
                true
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped += 1;
                if let Some(s) = &self.stats {
                    s.dropped_frames.add(1);
                }
                false
            }
        }
    }

    fn poll(&mut self, timeout: Duration) -> Option<TransportEvent> {
        match self.events_rx.recv_timeout(timeout) {
            Ok(ev) => Some(ev),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    fn local_addr(&self) -> Option<SocketAddr> {
        self.local
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        if let Some(addr) = self.local {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        }
        // Dropping the egress senders unblocks idle writer loops.
        self.outbound.clear();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// The accept loop: handshake inbound connections, spawn their readers,
/// and register reply paths for unconfigured peers.
struct Acceptor {
    events: Sender<TransportEvent>,
    inbound: InboundMap,
    stop: Arc<AtomicBool>,
    queue_capacity: usize,
    max_frame: u32,
    frame_errors: Option<Counter>,
}

impl Acceptor {
    fn run(self, listener: TcpListener) {
        let mut readers: Vec<JoinHandle<()>> = Vec::new();
        let mut next_conn: u64 = 0;
        for stream in listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(READ_SLICE));
            let Ok(peer) = read_hello(&mut stream) else {
                continue;
            };
            let conn_id = next_conn;
            next_conn += 1;

            // Give the peer a reply path over this same connection: one
            // writer thread draining a bounded queue. Newer connections
            // replace older entries (the peer restarted).
            let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(self.queue_capacity);
            lock(&self.inbound).insert(peer, (conn_id, tx));
            let writer_stream = match stream.try_clone() {
                Ok(s) => s,
                Err(_) => continue,
            };
            let stop_w = Arc::clone(&self.stop);
            readers.push(
                std::thread::Builder::new()
                    .name(format!("rsmr-reply-{peer}"))
                    .spawn(move || write_loop(writer_stream, rx, stop_w))
                    .expect("spawn reply writer"),
            );

            let _ = self.events.send(TransportEvent::PeerConnected(peer));
            let reader = InboundReader {
                peer,
                conn_id,
                events: self.events.clone(),
                inbound: Arc::clone(&self.inbound),
                stop: Arc::clone(&self.stop),
                max_frame: self.max_frame,
                frame_errors: self.frame_errors.clone(),
            };
            readers.push(
                std::thread::Builder::new()
                    .name(format!("rsmr-read-{peer}"))
                    .spawn(move || reader.run(stream))
                    .expect("spawn reader"),
            );
        }
        // Deregister all reply paths so their writer loops see hangup.
        lock(&self.inbound).clear();
        for t in readers {
            let _ = t.join();
        }
    }
}

struct InboundReader {
    peer: NodeId,
    conn_id: u64,
    events: Sender<TransportEvent>,
    inbound: InboundMap,
    stop: Arc<AtomicBool>,
    max_frame: u32,
    frame_errors: Option<Counter>,
}

impl InboundReader {
    fn run(self, stream: TcpStream) {
        read_loop(
            stream,
            self.peer,
            &self.events,
            &self.stop,
            self.max_frame,
            self.frame_errors.as_ref(),
        );
        // Drop the reply path, but only if it is still ours — the peer may
        // already have reconnected and replaced it.
        let mut map = lock(&self.inbound);
        if map
            .get(&self.peer)
            .is_some_and(|(id, _)| *id == self.conn_id)
        {
            map.remove(&self.peer);
        }
        drop(map);
        let _ = self
            .events
            .send(TransportEvent::PeerDisconnected(self.peer));
    }
}

/// The per-configured-peer connection keeper: connect, handshake, then pump
/// the egress queue until the connection or the transport dies; repeat with
/// exponential backoff.
struct Connector {
    me: NodeId,
    peer: NodeId,
    addr: SocketAddr,
    events: Sender<TransportEvent>,
    stop: Arc<AtomicBool>,
    reconnect_min: Duration,
    reconnect_max: Duration,
    max_frame: u32,
    stats: Option<NetStats>,
    gauges: Option<QueueGauges>,
}

impl Connector {
    fn run(self, rx: Receiver<Vec<u8>>) {
        let mut readers: Vec<JoinHandle<()>> = Vec::new();
        let mut backoff = self.reconnect_min;
        let mut ever_connected = false;
        while !self.stop.load(Ordering::SeqCst) {
            let stream =
                TcpStream::connect_timeout(&self.addr, Duration::from_secs(1)).and_then(|mut s| {
                    s.set_nodelay(true)?;
                    s.set_read_timeout(Some(READ_SLICE))?;
                    write_hello(&mut s, self.me)?;
                    Ok(s)
                });
            let stream = match stream {
                Ok(s) => s,
                Err(_) => {
                    self.sleep_backoff(backoff);
                    backoff = (backoff * 2).min(self.reconnect_max);
                    continue;
                }
            };
            backoff = self.reconnect_min;
            if ever_connected {
                if let Some(s) = &self.stats {
                    s.reconnects.add(1);
                }
            }
            ever_connected = true;

            // Whatever the peer pushes on this connection (e.g. replies to
            // a client) flows into the same event stream.
            if let Ok(read_stream) = stream.try_clone() {
                let events = self.events.clone();
                let stop = Arc::clone(&self.stop);
                let peer = self.peer;
                let max_frame = self.max_frame;
                let frame_errors = self.stats.as_ref().map(|s| s.frame_errors.clone());
                readers.push(
                    std::thread::Builder::new()
                        .name(format!("rsmr-read-{}-{}", self.me, peer))
                        .spawn(move || {
                            read_loop(
                                read_stream,
                                peer,
                                &events,
                                &stop,
                                max_frame,
                                frame_errors.as_ref(),
                            )
                        })
                        .expect("spawn reader"),
                );
            }
            let _ = self.events.send(TransportEvent::PeerConnected(self.peer));
            if !self.write_until_broken(&stream, &rx) {
                break; // transport dropped
            }
            let _ = self
                .events
                .send(TransportEvent::PeerDisconnected(self.peer));
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        for t in readers {
            let _ = t.join();
        }
    }

    /// Pumps frames until a write fails (returns `true`: reconnect) or the
    /// transport goes away (returns `false`: exit).
    fn write_until_broken(&self, stream: &TcpStream, rx: &Receiver<Vec<u8>>) -> bool {
        let coalesced = self.stats.as_ref().map(|s| &s.coalesced_write_bytes);
        matches!(
            pump_writes(stream, rx, &self.stop, self.gauges.as_ref(), coalesced),
            WriteEnd::Broken
        )
    }

    fn sleep_backoff(&self, total: Duration) {
        let deadline = Instant::now() + total;
        while Instant::now() < deadline && !self.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(20).min(total));
        }
    }
}

/// Shared by inbound and outbound readers: split the byte stream into
/// frames and forward them as events until EOF, error, or stop.
fn read_loop(
    mut stream: TcpStream,
    peer: NodeId,
    events: &Sender<TransportEvent>,
    stop: &AtomicBool,
    max_frame: u32,
    frame_errors: Option<&Counter>,
) {
    let mut frames = FrameBuffer::new(max_frame);
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // EOF
            Ok(n) => {
                frames.extend(&chunk[..n]);
                loop {
                    match frames.next_frame() {
                        Ok(Some(payload)) => {
                            if events
                                .send(TransportEvent::Frame {
                                    from: peer,
                                    payload,
                                })
                                .is_err()
                            {
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Oversized or checksum-failing frame: the
                            // stream is unrecoverable — kill the
                            // connection and let reconnect start clean.
                            if let Some(c) = frame_errors {
                                c.add(1);
                            }
                            return;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

/// Drains an egress queue into a socket until hangup — the reply path for
/// inbound (client) connections.
fn write_loop(stream: TcpStream, rx: Receiver<Vec<u8>>, stop: Arc<AtomicBool>) {
    // Reply paths are unmetered: clients come and go with arbitrary ids,
    // so per-peer gauges would grow without bound.
    pump_writes(&stream, &rx, &stop, None, None);
}

/// Why the socket pump stopped: the socket broke (the connector
/// reconnects) or the queue/transport went away (the pump exits).
enum WriteEnd {
    Broken,
    Closed,
}

/// How many queued bytes one wakeup will coalesce into a single
/// `write_all`. Bounds memory and latency under backlog; frames larger
/// than this still go out whole (the first frame is always taken).
const WRITE_COALESCE_BYTES: usize = 256 * 1024;

/// Drains an egress queue into a socket. Each wakeup takes every frame
/// already queued (up to [`WRITE_COALESCE_BYTES`]) and issues one write
/// syscall for the batch — at tens of thousands of frames per second the
/// per-frame wakeup + syscall pair dominates, so coalescing is the
/// difference between a saturated core and headroom.
fn pump_writes(
    mut stream: &TcpStream,
    rx: &Receiver<Vec<u8>>,
    stop: &AtomicBool,
    gauges: Option<&QueueGauges>,
    coalesced: Option<&HistogramHandle>,
) -> WriteEnd {
    let mut batch: Vec<u8> = Vec::with_capacity(WRITE_COALESCE_BYTES);
    loop {
        if stop.load(Ordering::SeqCst) {
            return WriteEnd::Closed;
        }
        let first = match rx.recv_timeout(WRITE_SLICE) {
            Ok(frame) => frame,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return WriteEnd::Closed,
        };
        batch.clear();
        batch.extend_from_slice(&first);
        let mut frames: u64 = 1;
        while batch.len() < WRITE_COALESCE_BYTES {
            match rx.try_recv() {
                Ok(frame) => {
                    batch.extend_from_slice(&frame);
                    frames += 1;
                }
                Err(_) => break,
            }
        }
        if let Some(g) = gauges {
            g.depth.sub(frames);
            g.bytes.sub(batch.len() as u64);
        }
        if let Some(h) = coalesced {
            h.record(batch.len() as u64);
        }
        if stream.write_all(&batch).is_err() {
            return WriteEnd::Broken;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_codec_round_trips() {
        let frame = encode_frame(b"hello");
        assert_eq!(&frame[..4], &5u32.to_le_bytes());
        assert_eq!(frame.len(), 4 + 5 + 4, "length prefix + payload + crc");
        assert_eq!(
            &frame[9..],
            &crc32c::checksum(b"hello").to_le_bytes(),
            "trailer is the payload's CRC-32C"
        );
        let mut fb = FrameBuffer::new(1024);
        fb.extend(&frame);
        assert_eq!(fb.next_frame().unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(fb.next_frame().unwrap(), None);
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn every_single_bit_flip_in_a_frame_is_detected() {
        // Flip each bit of payload and trailer in turn: the decoder must
        // report Corrupt every time, never return mangled bytes. (Bits in
        // the length prefix change the claimed geometry instead — those
        // surface as TooBig, a short read, or a trailer mismatch.)
        let clean = encode_frame(b"payload under test");
        for byte in 4..clean.len() {
            for bit in 0..8 {
                let mut mangled = clean.clone();
                mangled[byte] ^= 1 << bit;
                let mut fb = FrameBuffer::new(1024);
                fb.extend(&mangled);
                assert!(
                    matches!(fb.next_frame(), Err(FrameError::Corrupt { .. })),
                    "flip at {byte}:{bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn empty_frames_are_still_checksummed() {
        let mut frame = encode_frame(b"");
        assert_eq!(frame.len(), 8);
        frame[4] ^= 0x01; // the CRC trailer itself
        let mut fb = FrameBuffer::new(1024);
        fb.extend(&frame);
        assert!(matches!(fb.next_frame(), Err(FrameError::Corrupt { .. })));
    }

    #[test]
    fn partial_reads_reassemble_byte_by_byte() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(b""));
        stream.extend_from_slice(&encode_frame(b"abc"));
        stream.extend_from_slice(&encode_frame(&[0xFFu8; 300]));
        let mut fb = FrameBuffer::new(1024);
        let mut got = Vec::new();
        for &b in &stream {
            fb.extend(&[b]);
            while let Some(f) = fb.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], b"");
        assert_eq!(got[1], b"abc");
        assert_eq!(got[2], vec![0xFFu8; 300]);
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn jagged_chunk_boundaries_reassemble() {
        // Split a multi-frame stream at every possible boundary pair.
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(b"first"));
        stream.extend_from_slice(&encode_frame(b"second frame"));
        for cut in 0..stream.len() {
            let mut fb = FrameBuffer::new(1024);
            fb.extend(&stream[..cut]);
            let mut got = Vec::new();
            while let Some(f) = fb.next_frame().unwrap() {
                got.push(f);
            }
            fb.extend(&stream[cut..]);
            while let Some(f) = fb.next_frame().unwrap() {
                got.push(f);
            }
            assert_eq!(got.len(), 2, "cut at {cut}");
            assert_eq!(got[0], b"first");
            assert_eq!(got[1], b"second frame");
        }
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut fb = FrameBuffer::new(8);
        fb.extend(&encode_frame(&[0u8; 9]));
        let err = fb.next_frame().unwrap_err();
        assert_eq!(err, FrameError::TooBig { len: 9, max: 8 });
        assert!(err.to_string().contains("9 bytes"));
    }

    #[test]
    fn file_storage_round_trips_and_deletes() {
        let dir = std::env::temp_dir().join(format!("rsmr-fs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut fs = FileStorage::open(&dir, false).unwrap();
            assert!(fs.load().unwrap().is_empty());
            fs.apply("base", Some(b"hello")).unwrap();
            fs.apply("px/0001", Some(&[1, 2, 3])).unwrap();
            fs.apply("g0/weird key %!", Some(b"x")).unwrap();
            fs.apply("px/0001", Some(&[9])).unwrap(); // overwrite wins
            fs.sync().unwrap();
        }
        {
            let mut fs = FileStorage::open(&dir, false).unwrap();
            let loaded = fs.load().unwrap();
            assert_eq!(loaded.get("base"), Some(&b"hello"[..]));
            assert_eq!(loaded.get("px/0001"), Some(&[9u8][..]));
            assert_eq!(loaded.get("g0/weird key %!"), Some(&b"x"[..]));
            fs.apply("base", None).unwrap();
            fs.apply("never-existed", None).unwrap();
            fs.sync().unwrap();
        }
        let reloaded = FileStorage::open(&dir, false).unwrap().load().unwrap();
        assert_eq!(reloaded.get("base"), None);
        assert_eq!(reloaded.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_defers_device_syncs_within_the_window() {
        let dir = std::env::temp_dir().join(format!("rsmr-gc-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut fs = FileStorage::open(&dir, true)
                .unwrap()
                .with_sync_window(std::time::Duration::from_secs(3600));
            fs.load().unwrap();
            assert_eq!(fs.fsyncs(), 0);
            fs.apply("a", Some(b"1")).unwrap();
            fs.sync().unwrap();
            assert_eq!(fs.fsyncs(), 1, "first sync of a window hits the device");
            for i in 0..50u8 {
                fs.apply("k", Some(&[i])).unwrap();
                fs.sync().unwrap();
            }
            assert_eq!(fs.fsyncs(), 1, "later syncs in the window are deferred");
            // Drop closes the window: the deferred bytes are synced.
        }
        let mut fs = FileStorage::open(&dir, true).unwrap();
        let store = fs.load().unwrap();
        assert_eq!(store.get("a"), Some(&b"1"[..]));
        assert_eq!(store.get("k"), Some(&[49u8][..]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_window_syncs_every_batch() {
        let dir = std::env::temp_dir().join(format!("rsmr-gc0-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut fs = FileStorage::open(&dir, true).unwrap();
        fs.load().unwrap();
        for i in 0..3u8 {
            fs.apply("k", Some(&[i])).unwrap();
            fs.sync().unwrap();
        }
        assert_eq!(fs.fsyncs(), 3);
        drop(fs);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_log_tails_are_dropped_and_state_recompacts() {
        let dir = std::env::temp_dir().join(format!("rsmr-torn-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut fs = FileStorage::open(&dir, false).unwrap();
            fs.load().unwrap();
            fs.apply("a", Some(b"1")).unwrap();
            fs.apply("b", Some(b"2")).unwrap();
            fs.sync().unwrap();
        }
        // Simulate a crash mid-append: a valid prefix plus half a record.
        {
            use std::io::Write as _;
            let mut wal = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.join("wal"))
                .unwrap();
            let mut rec = Vec::new();
            FileStorage::encode_record(&mut rec, "c", Some(b"3"));
            rec.truncate(rec.len() - 1);
            wal.write_all(&rec).unwrap();
        }
        let mut fs = FileStorage::open(&dir, false).unwrap();
        let store = fs.load().unwrap();
        assert_eq!(store.get("a"), Some(&b"1"[..]));
        assert_eq!(store.get("b"), Some(&b"2"[..]));
        assert_eq!(store.get("c"), None, "the torn record never happened");
        // load() compacted: the wal is empty and the snapshot alone
        // reproduces the state.
        assert_eq!(std::fs::metadata(dir.join("wal")).unwrap().len(), 0);
        let mut snap_only = StableStore::new();
        FileStorage::replay(
            &std::fs::read(dir.join("snapshot")).unwrap(),
            &mut snap_only,
        );
        assert_eq!(snap_only.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flipped_wal_records_truncate_at_detection() {
        // Seeded sweep over every byte/bit position of the third record:
        // replay must always recover the state before the flip exactly,
        // count one corrupt record, and never apply mangled bytes.
        let dir = std::env::temp_dir().join(format!("rsmr-flip-test-{}", std::process::id()));
        let mut rng = crate::rng::SimRng::seed_from_u64(0xB17F11);
        let mut prefix = Vec::new();
        FileStorage::encode_record(&mut prefix, "a", Some(b"alpha"));
        FileStorage::encode_record(&mut prefix, "b", Some(b"bravo"));
        let mut third = Vec::new();
        FileStorage::encode_record(&mut third, "c", Some(b"charlie"));
        for _ in 0..64 {
            let byte = rng.gen_range(0..third.len());
            let bit = rng.gen_range(0..8u32);
            let mut wal = prefix.clone();
            let mut mangled = third.clone();
            mangled[byte] ^= 1 << bit;
            wal.extend_from_slice(&mangled);
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("wal"), &wal).unwrap();
            let mut fs = FileStorage::open(&dir, false).unwrap();
            let store = fs.load().unwrap();
            assert_eq!(store.get("a"), Some(&b"alpha"[..]), "flip {byte}:{bit}");
            assert_eq!(store.get("b"), Some(&b"bravo"[..]), "flip {byte}:{bit}");
            // The flipped record either failed its CRC (counted) or — if
            // the flip hit a length field — looked torn and was dropped.
            // In no case does a record with a wrong value survive.
            if let Some(v) = store.get("c") {
                panic!("corrupt record applied as {v:?} (flip {byte}:{bit})");
            }
            assert!(fs.corrupt_records() <= 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_bit_rot_is_detected_and_counted() {
        let dir = std::env::temp_dir().join(format!("rsmr-rot-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let registry = Registry::new();
        {
            let mut fs = FileStorage::open(&dir, false).unwrap();
            fs.load().unwrap();
            fs.apply("k0", Some(b"stable")).unwrap();
            fs.apply("k1", Some(b"decays")).unwrap();
            fs.sync().unwrap();
        }
        // Fold into a snapshot, then rot a bit inside the second record's
        // value region.
        FileStorage::open(&dir, false).unwrap().load().unwrap();
        let mut snap = std::fs::read(dir.join("snapshot")).unwrap();
        assert!(std::fs::metadata(dir.join("wal")).unwrap().len() == 0);
        let n = snap.len();
        snap[n - 6] ^= 0x10;
        std::fs::write(dir.join("snapshot"), &snap).unwrap();
        let mut fs = FileStorage::open(&dir, false)
            .unwrap()
            .with_telemetry(&registry);
        let store = fs.load().unwrap();
        assert_eq!(store.get("k0"), Some(&b"stable"[..]));
        assert_eq!(store.get("k1"), None, "rotted record must not survive");
        assert_eq!(fs.corrupt_records(), 1);
        let snap = registry.snapshot();
        let corrupt = snap
            .counters
            .iter()
            .find(|(n, _)| n == "storage.wal_corrupt_records")
            .map(|(_, v)| *v);
        assert_eq!(corrupt, Some(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lying_fsync_loses_the_tail_but_never_consistency() {
        let dir = std::env::temp_dir().join(format!("rsmr-lie-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let inner = FileStorage::open(&dir, false).unwrap();
            let mut fs = FaultyStorage::new(inner).lie_on_syncs(1);
            fs.load().unwrap();
            fs.apply("durable", Some(b"yes")).unwrap();
            fs.sync().unwrap(); // honest? no — this one lies
            assert_eq!(fs.lied(), 1);
            fs.apply("after", Some(b"maybe")).unwrap();
            fs.sync().unwrap(); // honest again: flushes everything buffered
                                // Simulate a hard crash: leak the handle so Drop never flushes.
            std::mem::forget(fs.into_inner());
        }
        let mut fs = FileStorage::open(&dir, false).unwrap();
        let store = fs.load().unwrap();
        // The second (honest) sync flushed the writer, so both records
        // survive here; the guarantee under test is weaker and exact:
        // whatever subset is on disk replays to a consistent prefix with
        // zero corrupt records.
        assert_eq!(fs.corrupt_records(), 0);
        for key in ["durable", "after"] {
            if let Some(v) = store.get(key) {
                assert!(v == b"yes" || v == b"maybe", "mangled value for {key}");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulty_transport_is_deterministic_and_counts_injections() {
        let hub = ChannelHub::new();
        let run = |seed: u64| {
            let mut out = Vec::new();
            let mut rx = hub.endpoint(NodeId(2));
            let mut tx = FaultyTransport::new(hub.endpoint(NodeId(1)), seed)
                .with_drop_rate(0.3)
                .with_corrupt_rate(0.3)
                .with_truncate_rate(0.2)
                .with_duplicate_rate(0.2);
            for i in 0..40u8 {
                tx.send(NodeId(2), vec![i; 8]);
            }
            while let Some(TransportEvent::Frame { payload, .. }) =
                rx.poll(Duration::from_millis(10))
            {
                out.push(payload);
            }
            (out, tx.injected())
        };
        let (a, inj_a) = run(7);
        let (b, inj_b) = run(7);
        assert_eq!(a, b, "same seed must inject identically");
        assert_eq!(inj_a, inj_b);
        assert!(inj_a > 0, "rates this high must fire");
        let (c, _) = run(8);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn corrupted_tcp_frame_kills_the_connection_and_reconnect_resumes() {
        // The wire-integrity satellite, over real sockets: frame #1 out of
        // the client is bit-flipped post-CRC. The server must detect the
        // mismatch (net.frame_errors), drop the connection, and the
        // client's reconnect-with-backoff must get later frames through.
        let server_reg = Registry::new();
        let client_reg = Registry::new();
        let mut server = TcpTransport::bind(
            TcpConfig::new(NodeId(0))
                .listen("127.0.0.1:0".parse().unwrap())
                .telemetry(server_reg.clone()),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = TcpTransport::bind(
            TcpConfig::new(NodeId(100))
                .peer(NodeId(0), addr)
                .telemetry(client_reg.clone())
                .corrupt_frame(1),
        )
        .unwrap();

        let counter = |reg: &Registry, name: &str| {
            reg.snapshot()
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v)
        };
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut next_seq: u64 = 0;
        let mut delivered: Vec<u64> = Vec::new();
        // Keep sending sequence-numbered frames until, post-corruption,
        // the stream flows again. Frame 1 is mangled on the wire; frames
        // queued behind it on the killed connection may be lost, exactly
        // like network loss.
        loop {
            assert!(
                Instant::now() < deadline,
                "stream never recovered: delivered {delivered:?}"
            );
            if client.send(NodeId(0), next_seq.to_le_bytes().to_vec()) {
                next_seq += 1;
            }
            if let Some(TransportEvent::Frame { payload, .. }) =
                server.poll(Duration::from_millis(20))
            {
                let seq = u64::from_le_bytes(payload.as_slice().try_into().unwrap());
                delivered.push(seq);
                if counter(&server_reg, "net.frame_errors") >= 1 && seq >= 2 {
                    break;
                }
            }
        }
        assert!(
            !delivered.contains(&1),
            "the corrupted frame must never be surfaced: {delivered:?}"
        );
        assert_eq!(counter(&server_reg, "net.frame_errors"), 1);
        assert!(
            counter(&client_reg, "net.reconnects") >= 1,
            "recovery must have gone through a reconnect"
        );
    }

    #[test]
    fn replaying_an_already_folded_log_is_idempotent() {
        // Crash window in compact(): new snapshot written, old wal not yet
        // truncated. Replaying the full wal over the folded snapshot must
        // converge to the same state (last write per key wins).
        let mut wal = Vec::new();
        FileStorage::encode_record(&mut wal, "k", Some(b"old"));
        FileStorage::encode_record(&mut wal, "k", Some(b"new"));
        FileStorage::encode_record(&mut wal, "gone", Some(b"x"));
        FileStorage::encode_record(&mut wal, "gone", None);
        let mut once = StableStore::new();
        FileStorage::replay(&wal, &mut once);
        let mut twice = once.clone();
        FileStorage::replay(&wal, &mut twice);
        assert_eq!(once.get("k"), Some(&b"new"[..]));
        assert_eq!(once.get("gone"), None);
        assert_eq!(twice.get("k"), once.get("k"));
        assert_eq!(twice.len(), once.len());
    }

    #[test]
    fn channel_hub_routes_between_endpoints() {
        let hub = ChannelHub::new();
        let mut a = hub.endpoint(NodeId(1));
        let mut b = hub.endpoint(NodeId(2));
        assert!(a.send(NodeId(2), b"ping".to_vec()));
        match b.poll(Duration::from_secs(1)) {
            Some(TransportEvent::Frame { from, payload }) => {
                assert_eq!(from, NodeId(1));
                assert_eq!(payload, b"ping");
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(!b.send(NodeId(99), b"nope".to_vec()), "unknown peer drops");
        assert!(a.poll(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn tcp_transport_sends_both_ways_and_serves_unconfigured_clients() {
        // Server listens; client connects outbound only (no listener) —
        // the server must still be able to reply via the inbound path.
        let mut server =
            TcpTransport::bind(TcpConfig::new(NodeId(0)).listen("127.0.0.1:0".parse().unwrap()))
                .unwrap();
        let addr = server.local_addr().unwrap();
        let mut client =
            TcpTransport::bind(TcpConfig::new(NodeId(100)).peer(NodeId(0), addr)).unwrap();

        // Client -> server.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut sent = false;
        let payload = loop {
            assert!(Instant::now() < deadline, "no frame before deadline");
            if !sent {
                sent = client.send(NodeId(0), b"request".to_vec());
            }
            match server.poll(Duration::from_millis(50)) {
                Some(TransportEvent::Frame { from, payload }) => {
                    assert_eq!(from, NodeId(100));
                    break payload;
                }
                _ => continue,
            }
        };
        assert_eq!(payload, b"request");

        // Server -> client over the client's own connection.
        assert!(server.send(NodeId(100), b"reply".to_vec()));
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            assert!(Instant::now() < deadline, "no reply before deadline");
            match client.poll(Duration::from_millis(50)) {
                Some(TransportEvent::Frame { from, payload }) => {
                    assert_eq!(from, NodeId(0));
                    assert_eq!(payload, b"reply");
                    break;
                }
                _ => continue,
            }
        }

        // Sends to unknown peers drop and are counted.
        assert!(!server.send(NodeId(42), b"x".to_vec()));
        assert_eq!(server.dropped(), 1);
    }

    #[test]
    fn file_storage_telemetry_records_appends_fsyncs_and_window_fill() {
        let dir = std::env::temp_dir().join(format!("rsmr-fstel-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let registry = Registry::new();
        {
            let mut fs = FileStorage::open(&dir, true)
                .unwrap()
                .with_sync_window(std::time::Duration::from_secs(3600))
                .with_telemetry(&registry);
            fs.load().unwrap();
            fs.apply("a", Some(b"12345")).unwrap();
            fs.sync().unwrap(); // window opens: device sync, fill = 1
            for i in 0..3u8 {
                fs.apply("k", Some(&[i])).unwrap();
                fs.sync().unwrap(); // deferred within the window
            }
        }
        let snap = registry.snapshot();
        let hist = |name: &str| {
            snap.histograms
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h)
                .unwrap_or_else(|| panic!("missing histogram {name}"))
        };
        assert_eq!(hist("storage.wal_append_bytes").count(), 4);
        // One device sync happened (the window absorbed the rest).
        assert_eq!(hist("storage.fsync_us").count(), 1);
        let fill = hist("storage.group_commit_fill");
        assert_eq!(fill.count(), 1);
        assert_eq!(fill.max(), Some(1), "the first sync had nothing batched");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tcp_transport_telemetry_tracks_queues_writes_and_drops() {
        let registry = Registry::new();
        let mut server =
            TcpTransport::bind(TcpConfig::new(NodeId(0)).listen("127.0.0.1:0".parse().unwrap()))
                .unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = TcpTransport::bind(
            TcpConfig::new(NodeId(100))
                .peer(NodeId(0), addr)
                .telemetry(registry.clone()),
        )
        .unwrap();

        // Push a frame through and wait for it to arrive.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut sent = false;
        loop {
            assert!(Instant::now() < deadline, "no frame before deadline");
            if !sent {
                sent = client.send(NodeId(0), b"request".to_vec());
            }
            match server.poll(Duration::from_millis(50)) {
                Some(TransportEvent::Frame { .. }) => break,
                _ => continue,
            }
        }
        // A send to an unknown peer bumps the dropped-frames counter.
        assert!(!client.send(NodeId(42), b"x".to_vec()));

        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            assert!(Instant::now() < deadline, "telemetry never converged");
            let snap = registry.snapshot();
            let counter = |name: &str| {
                snap.counters
                    .iter()
                    .find(|(n, _)| n == name)
                    .map_or(0, |(_, v)| *v)
            };
            let coalesced = snap
                .histograms
                .iter()
                .find(|(n, _)| n == "net.coalesced_write_bytes")
                .map_or(0, |(_, h)| h.count());
            let depth = snap
                .gauges
                .iter()
                .find(|(n, _)| n == "net.outbound_queue_depth{peer=\"n0\"}")
                .map_or(u64::MAX, |(_, v)| *v);
            // The frame was written (one coalesced batch), the queue
            // drained back to empty, and the drop was counted.
            if coalesced >= 1 && depth == 0 && counter("net.dropped_frames") == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}
