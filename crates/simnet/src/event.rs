//! The event queue: a min-heap keyed on `(time, sequence)`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::actor::TimerId;
use crate::sim::NodeId;
use crate::time::SimTime;

/// What happens when an event is popped.
#[derive(Debug)]
pub(crate) enum Ev<M> {
    /// Deliver a network message.
    Deliver { to: NodeId, from: NodeId, msg: M },
    /// Fire a timer, provided the node's incarnation still matches.
    TimerFire {
        node: NodeId,
        id: TimerId,
        kind: u32,
        incarnation: u64,
    },
}

struct Entry<M> {
    at: SimTime,
    seq: u64,
    ev: Ev<M>,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Entry<M> {}
impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the earliest event;
        // ties broken by insertion order for determinism.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Entry<M>>,
    seq: u64,
}

impl<M> EventQueue<M> {
    pub(crate) fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, ev: Ev<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, ev });
    }

    /// Time of the next event without removing it.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, Ev<M>)> {
        self.heap.pop().map(|e| (e.at, e.ev))
    }

    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(n: u64) -> Ev<u32> {
        Ev::Deliver {
            to: NodeId(n),
            from: NodeId(0),
            msg: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), deliver(3));
        q.push(SimTime::from_micros(10), deliver(1));
        q.push(SimTime::from_micros(20), deliver(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, ev)| match ev {
                Ev::Deliver { to, .. } => to.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..5 {
            q.push(t, deliver(i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, ev)| match ev {
                Ev::Deliver { to, .. } => to.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::from_micros(1), deliver(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(1)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.peek_time().is_none());
    }
}
