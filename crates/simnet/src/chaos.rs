//! Deterministic fault injection: declarative fault plans, a seeded chaos
//! generator, and a driver that applies plans to a running [`Sim`].
//!
//! A [`FaultPlan`] is pure data: a schedule of crash/restart, partition/heal
//! and link-degradation windows, each aimed at a [`FaultTarget`]. Targets
//! may be concrete node ids or *roles* ("the current leader", "the transfer
//! donor", "the joiner") that the harness resolves at fire time, so one plan
//! applies to any system under test. [`ChaosGen`] samples random plans from
//! a seeded [`SimRng`], which makes every chaos run a replayable seed: a
//! failure reproduces from `(scenario, chaos seed)` alone.
//!
//! [`ChaosDriver`] executes a plan against a [`Sim`]: it advances virtual
//! time to each fault, resolves the target through a harness-supplied
//! closure, applies the fault through the simulator's own fault API
//! ([`Sim::crash`], [`Sim::block_link`], [`Sim::set_link`]), and schedules
//! the matching cure (restart, heal, clear) as a follow-up action. Crashed
//! nodes are rebuilt through a second closure — the *restart factory* —
//! which recovers the actor from its surviving [`StableStore`], exactly as
//! a real process restarts from disk.
//!
//! Everything here is deterministic: resolution is a pure function of sim
//! state, actions are totally ordered by `(time, insertion seq)`, and the
//! generator consumes only its own RNG.
//!
//! [`StableStore`]: crate::StableStore

use std::collections::{BTreeMap, BTreeSet};

use crate::actor::Actor;
use crate::net::NetConfig;
use crate::observe::{DomainEvent, DropReason, Observer, SimEvent};
use crate::rng::SimRng;
use crate::sim::{NodeId, Sim};
use crate::time::{SimDuration, SimTime};

/// Who a fault hits. Role targets are resolved by the harness when the
/// fault fires, against the live simulation state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// A specific node id.
    Node(NodeId),
    /// The `k % n`-th of the harness's `n` server nodes (joiners included).
    /// Lets a seeded generator pick "some server" without knowing ids.
    ServerIdx(u64),
    /// Whoever leads the active consensus instance at fire time.
    CurrentLeader,
    /// The node serving (or about to serve) a state transfer.
    TransferDonor,
    /// The first configured joiner.
    Joiner,
}

impl std::fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultTarget::Node(n) => write!(f, "{n}"),
            FaultTarget::ServerIdx(k) => write!(f, "server#{k}"),
            FaultTarget::CurrentLeader => write!(f, "leader"),
            FaultTarget::TransferDonor => write!(f, "donor"),
            FaultTarget::Joiner => write!(f, "joiner"),
        }
    }
}

/// What happens to the target.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Crash the node. With `restart_after` set, the harness's restart
    /// factory rebuilds it from stable storage after that delay; `None`
    /// leaves it down for the rest of the run.
    Crash {
        /// Delay until the restart, `None` = never.
        restart_after: Option<SimDuration>,
    },
    /// Isolate the target from every other node for the window.
    Partition {
        /// How long the target stays cut off.
        heal_after: SimDuration,
    },
    /// Degrade every link of the target (loss, duplication, extra delay)
    /// for the window.
    Degrade {
        /// Probability each message on the link is dropped.
        drop_rate: f64,
        /// Probability each message on the link is duplicated.
        duplicate_rate: f64,
        /// Added one-way delay on the link.
        extra_delay: SimDuration,
        /// How long the degradation lasts.
        heal_after: SimDuration,
    },
    /// Corrupt traffic on every link of the target for the window: bit
    /// flips and truncations (both caught by the CRC32C frame check, so
    /// they surface as detected drops) plus spurious duplicates. On the
    /// real backend the same parameters drive a
    /// [`FaultyTransport`](crate::transport::FaultyTransport) wrapper.
    Corrupt {
        /// Probability each message has a bit flipped in flight.
        bit_flip_rate: f64,
        /// Probability each message is truncated in flight.
        truncate_rate: f64,
        /// Probability each message is duplicated in flight.
        duplicate_rate: f64,
        /// How long the corruption window lasts.
        heal_after: SimDuration,
    },
    /// A disk fault at the target. The simulator's stable store is
    /// synchronously durable, so every flavour degenerates to the same
    /// observable outcome the integrity layer guarantees on the real
    /// backend: the node crashes now and recovers from its last consistent
    /// prefix (torn tails and rotten records are truncated at detection,
    /// never applied). The byte-level flavours are exercised for real
    /// against `FileStorage` in the transport tests.
    Disk {
        /// Which byte-level failure this models.
        fault: DiskFault,
        /// Delay until the node restarts from its surviving store.
        restart_after: SimDuration,
    },
}

/// The byte-level disk failure a [`FaultKind::Disk`] event models.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DiskFault {
    /// The WAL tail was torn mid-record by the crash.
    TornWalTail,
    /// A snapshot record rotted on disk (CRC mismatch on replay).
    SnapshotBitRot,
    /// An fsync reported success without reaching the platter.
    LyingFsync,
}

impl DiskFault {
    /// Stable lower-case name, used in replay logs.
    pub fn name(self) -> &'static str {
        match self {
            DiskFault::TornWalTail => "torn_wal_tail",
            DiskFault::SnapshotBitRot => "snapshot_bit_rot",
            DiskFault::LyingFsync => "lying_fsync",
        }
    }
}

/// One scheduled fault.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    /// Virtual time at which the fault fires.
    pub at: SimTime,
    /// Who it hits (resolved at fire time for role targets).
    pub target: FaultTarget,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// When this fault's effect is fully cured (restart or heal). A crash
    /// without a restart never cures; its fire time is returned.
    fn cured_at(&self) -> SimTime {
        match self.kind {
            FaultKind::Crash { restart_after } => {
                self.at + restart_after.unwrap_or(SimDuration::ZERO)
            }
            FaultKind::Partition { heal_after } => self.at + heal_after,
            FaultKind::Degrade { heal_after, .. } => self.at + heal_after,
            FaultKind::Corrupt { heal_after, .. } => self.at + heal_after,
            FaultKind::Disk { restart_after, .. } => self.at + restart_after,
        }
    }
}

/// A declarative, deterministic schedule of faults. Pure data: apply it
/// with a [`ChaosDriver`], or build scenarios around it by hand.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults (any order; the driver sorts by fire time).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a crash (with optional restart), builder-style.
    pub fn crash_at(
        mut self,
        at: SimTime,
        target: FaultTarget,
        restart_after: Option<SimDuration>,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            target,
            kind: FaultKind::Crash { restart_after },
        });
        self
    }

    /// Adds a full isolation window, builder-style.
    pub fn partition_at(
        mut self,
        at: SimTime,
        target: FaultTarget,
        heal_after: SimDuration,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            target,
            kind: FaultKind::Partition { heal_after },
        });
        self
    }

    /// Adds a link-degradation window, builder-style.
    pub fn degrade_at(
        mut self,
        at: SimTime,
        target: FaultTarget,
        drop_rate: f64,
        duplicate_rate: f64,
        extra_delay: SimDuration,
        heal_after: SimDuration,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            target,
            kind: FaultKind::Degrade {
                drop_rate,
                duplicate_rate,
                extra_delay,
                heal_after,
            },
        });
        self
    }

    /// Adds a corruption window, builder-style.
    pub fn corrupt_at(
        mut self,
        at: SimTime,
        target: FaultTarget,
        bit_flip_rate: f64,
        truncate_rate: f64,
        duplicate_rate: f64,
        heal_after: SimDuration,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            target,
            kind: FaultKind::Corrupt {
                bit_flip_rate,
                truncate_rate,
                duplicate_rate,
                heal_after,
            },
        });
        self
    }

    /// Adds a disk fault, builder-style.
    pub fn disk_at(
        mut self,
        at: SimTime,
        target: FaultTarget,
        fault: DiskFault,
        restart_after: SimDuration,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            target,
            kind: FaultKind::Disk {
                fault,
                restart_after,
            },
        });
        self
    }

    /// The time by which every fault in the plan has been cured (every
    /// crashed node restarted, every window closed). Crashes without a
    /// restart count as cured at their fire time — the cluster is expected
    /// to survive them on the remaining nodes.
    pub fn healed_by(&self) -> SimTime {
        self.events
            .iter()
            .map(FaultEvent::cured_at)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// The events sorted by fire time (stable, so same-time events keep
    /// their plan order).
    pub fn sorted(&self) -> Vec<FaultEvent> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| e.at);
        evs
    }

    /// A compact human-readable description, used in replay logs.
    pub fn describe(&self) -> String {
        let parts: Vec<String> = self
            .sorted()
            .iter()
            .map(|e| {
                let what = match e.kind {
                    FaultKind::Crash {
                        restart_after: Some(d),
                    } => format!("crash+restart@{d}"),
                    FaultKind::Crash {
                        restart_after: None,
                    } => "crash".to_owned(),
                    FaultKind::Partition { heal_after } => format!("partition@{heal_after}"),
                    FaultKind::Degrade {
                        drop_rate,
                        heal_after,
                        ..
                    } => format!("degrade(p={drop_rate:.2})@{heal_after}"),
                    FaultKind::Corrupt {
                        bit_flip_rate,
                        truncate_rate,
                        heal_after,
                        ..
                    } => {
                        format!(
                            "corrupt(p={:.2})@{heal_after}",
                            bit_flip_rate + truncate_rate
                        )
                    }
                    FaultKind::Disk {
                        fault,
                        restart_after,
                    } => format!("disk({})+restart@{restart_after}", fault.name()),
                };
                format!("[{} {} {}]", e.at, e.target, what)
            })
            .collect();
        parts.join(" ")
    }
}

/// Seeded sampler of random-but-replayable fault plans.
///
/// Two generators with the same seed produce identical plans, so a failing
/// chaos run is fully described by its seed.
pub struct ChaosGen {
    rng: SimRng,
}

impl ChaosGen {
    /// A generator producing the deterministic plan sequence for `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosGen {
            rng: SimRng::seed_from_u64(seed ^ 0xC4A0_5FA0_17AD_D00D),
        }
    }

    /// Samples a plan of `n_faults` events, each firing in `[from, until)`,
    /// mixing crashes (always with a restart), partitions, degradation and
    /// corruption windows, and disk faults over role and indexed-server
    /// targets.
    pub fn sample(&mut self, from: SimTime, until: SimTime, n_faults: usize) -> FaultPlan {
        let span = until.since(from).as_micros().max(1);
        let mut plan = FaultPlan::new();
        for _ in 0..n_faults {
            let at = from + SimDuration::from_micros(self.rng.gen_range(0..span));
            let target = sample_target(&mut self.rng);
            let kind = sample_kind(&mut self.rng);
            plan.events.push(FaultEvent { at, target, kind });
        }
        plan.events.sort_by_key(|e| e.at);
        plan
    }
}

/// Draws a fault target from the generator distribution.
fn sample_target(rng: &mut SimRng) -> FaultTarget {
    match rng.gen_range(0..10u32) {
        0..=2 => FaultTarget::CurrentLeader,
        3..=4 => FaultTarget::TransferDonor,
        5..=6 => FaultTarget::Joiner,
        _ => FaultTarget::ServerIdx(rng.next_u64()),
    }
}

/// Draws a fault kind from the generator distribution.
fn sample_kind(rng: &mut SimRng) -> FaultKind {
    match rng.gen_range(0..14u32) {
        0..=3 => FaultKind::Crash {
            restart_after: Some(SimDuration::from_micros(rng.gen_range(100_000..600_000u64))),
        },
        4..=7 => FaultKind::Partition {
            heal_after: SimDuration::from_micros(rng.gen_range(100_000..400_000u64)),
        },
        8..=9 => FaultKind::Degrade {
            drop_rate: 0.1 + 0.4 * rng.next_f64(),
            duplicate_rate: 0.2 * rng.next_f64(),
            extra_delay: SimDuration::from_micros(rng.gen_range(0..20_000u64)),
            heal_after: SimDuration::from_micros(rng.gen_range(100_000..400_000u64)),
        },
        10..=11 => FaultKind::Corrupt {
            bit_flip_rate: 0.05 + 0.25 * rng.next_f64(),
            truncate_rate: 0.15 * rng.next_f64(),
            duplicate_rate: 0.15 * rng.next_f64(),
            heal_after: SimDuration::from_micros(rng.gen_range(100_000..400_000u64)),
        },
        _ => FaultKind::Disk {
            fault: match rng.gen_range(0..3u32) {
                0 => DiskFault::TornWalTail,
                1 => DiskFault::SnapshotBitRot,
                _ => DiskFault::LyingFsync,
            },
            restart_after: SimDuration::from_micros(rng.gen_range(100_000..600_000u64)),
        },
    }
}

/// Identity of a (possibly mutated) chaos plan: a base seed plus the chain
/// of mutation indices applied to it, and a link-delay permutation for the
/// bounded delivery-order exploration. Everything a coverage-guided sweep
/// discovers is replayable from this value alone — printing only the base
/// seed would lose the mutations, which is exactly the replay bug this
/// type fixes.
///
/// Rendered as `BASE[:m1,m2,...][#perm]` with `BASE` in hex, e.g.
/// `0xfa17:3,12#5`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PlanLineage {
    /// The seed the root plan was sampled from ([`ChaosGen::new`]).
    pub base_seed: u64,
    /// Mutation indices applied in order; each child plan is a pure
    /// function of the parent plan and its index.
    pub mutations: Vec<u32>,
    /// Link-delay permutation index (see [`link_delay_permutation`]);
    /// `0` = the scenario's default links.
    pub perm: u64,
}

impl PlanLineage {
    /// The lineage of an unmutated plan for `base_seed`.
    pub fn seed(base_seed: u64) -> Self {
        PlanLineage {
            base_seed,
            mutations: Vec::new(),
            perm: 0,
        }
    }

    /// This lineage with one more mutation appended.
    pub fn child(&self, mutation: u32) -> Self {
        let mut next = self.clone();
        next.mutations.push(mutation);
        next
    }

    /// This lineage with a different link-delay permutation.
    pub fn with_perm(&self, perm: u64) -> Self {
        let mut next = self.clone();
        next.perm = perm;
        next
    }

    /// Materializes the concrete [`FaultPlan`]: sample the root plan from
    /// the base seed, then replay every mutation in order. Deterministic —
    /// equal lineages always produce equal plans, on any host.
    pub fn materialize(&self, from: SimTime, until: SimTime, n_faults: usize) -> FaultPlan {
        let mut plan = ChaosGen::new(self.base_seed).sample(from, until, n_faults);
        let mut state = self.base_seed;
        for &m in &self.mutations {
            state = mix_seed(state, m);
            plan = mutate_plan(&plan, state, from, until);
        }
        plan
    }

    /// Parses the `BASE[:m1,m2][#perm]` form produced by `Display`.
    pub fn parse(s: &str) -> Option<Self> {
        let (body, perm) = match s.split_once('#') {
            Some((body, p)) => (body, p.parse().ok()?),
            None => (s, 0),
        };
        let (base, muts) = match body.split_once(':') {
            Some((base, rest)) => {
                let muts: Option<Vec<u32>> = rest.split(',').map(|m| m.parse().ok()).collect();
                (base, muts?)
            }
            None => (body, Vec::new()),
        };
        let base_seed = match base.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16).ok()?,
            None => base.parse().ok()?,
        };
        Some(PlanLineage {
            base_seed,
            mutations: muts,
            perm,
        })
    }
}

impl std::fmt::Display for PlanLineage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.base_seed)?;
        for (i, m) in self.mutations.iter().enumerate() {
            write!(f, "{}{m}", if i == 0 { ':' } else { ',' })?;
        }
        if self.perm != 0 {
            write!(f, "#{}", self.perm)?;
        }
        Ok(())
    }
}

/// Mixes a mutation index into the lineage seed chain (splitmix64 step, so
/// sibling mutations and successive generations never share RNG streams).
fn mix_seed(state: u64, mutation: u32) -> u64 {
    let mut z = state
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(mutation) << 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Applies one deterministic mutation to a parent plan: jitter a fire
/// time, retarget an event, resample a kind, add, remove, or race a copy
/// of an event at a nearby time. Pure in `(parent, seed)`.
pub fn mutate_plan(parent: &FaultPlan, seed: u64, from: SimTime, until: SimTime) -> FaultPlan {
    let mut rng = SimRng::seed_from_u64(seed ^ 0x0C0F_FEE0_5EED_F00D);
    let span = until.since(from).as_micros().max(1);
    let mut plan = parent.clone();
    if plan.events.is_empty() {
        let at = from + SimDuration::from_micros(rng.gen_range(0..span));
        plan.events.push(FaultEvent {
            at,
            target: sample_target(&mut rng),
            kind: sample_kind(&mut rng),
        });
        return plan;
    }
    let idx = rng.gen_range(0..plan.events.len() as u64) as usize;
    match rng.gen_range(0..6u32) {
        0 => {
            plan.events[idx].at = from + SimDuration::from_micros(rng.gen_range(0..span));
        }
        1 => {
            plan.events[idx].target = sample_target(&mut rng);
        }
        2 => {
            plan.events[idx].kind = sample_kind(&mut rng);
        }
        3 => {
            let at = from + SimDuration::from_micros(rng.gen_range(0..span));
            plan.events.push(FaultEvent {
                at,
                target: sample_target(&mut rng),
                kind: sample_kind(&mut rng),
            });
        }
        4 => {
            if plan.events.len() > 1 {
                plan.events.remove(idx);
            } else {
                plan.events[idx].kind = sample_kind(&mut rng);
            }
        }
        _ => {
            // Race a copy of the event close to the original — the cheap
            // way to manufacture two faults landing inside one lifecycle
            // window (e.g. two hits on the seal/anchor gap).
            let mut copy = plan.events[idx].clone();
            let jitter = rng.gen_range(0..50_000u64);
            copy.at = from
                + SimDuration::from_micros(
                    (copy.at.since(from).as_micros() + jitter) % span.max(1),
                );
            copy.target = sample_target(&mut rng);
            plan.events.push(copy);
        }
    }
    plan.events.sort_by_key(|e| e.at);
    plan
}

/// The per-link one-way delays for bounded delivery-order exploration of
/// 3-node configurations (DPOR-flavoured: instead of random jitter, the
/// sweep systematically enumerates delay assignments that realize distinct
/// relative delivery orders between the three replicas).
///
/// Each of the three inter-node links gets one of three fixed delays,
/// giving 27 assignments; `perm` indexes them (taken modulo 27). Index 0
/// is the all-fastest assignment. Returns delays for links
/// `(n0,n1), (n0,n2), (n1,n2)` in that order.
pub fn link_delay_permutation(perm: u64) -> [SimDuration; 3] {
    const CHOICES: [u64; 3] = [150, 400, 900]; // µs
    let mut p = perm % 27;
    let mut out = [SimDuration::ZERO; 3];
    for slot in &mut out {
        *slot = SimDuration::from_micros(CHOICES[(p % 3) as usize]);
        p /= 3;
    }
    out
}

/// A scheduled driver action: fire a plan event, or cure an applied fault.
#[derive(Debug)]
enum Action {
    Fire(FaultEvent),
    Restart(NodeId),
    HealPartition(NodeId),
    ClearDegrade(NodeId),
    ClearCorrupt(NodeId),
}

/// Applies a [`FaultPlan`] to a [`Sim`], resolving role targets and
/// rebuilding crashed actors through harness-supplied hooks.
///
/// `resolve` maps a [`FaultTarget`] to a live node (returning `None` skips
/// the event — e.g. no leader exists at that instant). `rebuild`
/// reconstructs a crashed node's actor from the simulation (typically from
/// [`Sim::storage`]). Both are called at deterministic points, so a driven
/// run remains a pure function of `(actors, seed, plan)`.
pub struct ChaosDriver<'h, A: Actor> {
    /// Pending actions ordered by `(time, seq)`; `seq` breaks ties by
    /// insertion order.
    queue: Vec<(SimTime, u64, Action)>,
    next_seq: u64,
    /// Every node the harness wants isolated targets cut off from.
    scope: Vec<NodeId>,
    /// Reference-counted severed pairs, so overlapping partitions heal
    /// correctly (a pair reopens only when its last partition lifts).
    cuts: BTreeMap<(NodeId, NodeId), u32>,
    /// Reference-counted degraded pairs (last clear removes the override).
    degrades: BTreeMap<(NodeId, NodeId), u32>,
    /// Reference-counted corrupted pairs (last clear removes the override).
    corrupts: BTreeMap<(NodeId, NodeId), u32>,
    /// Base link config degraded windows derive from.
    base_net: NetConfig,
    #[allow(clippy::type_complexity)]
    resolve: Box<dyn FnMut(&Sim<A>, &FaultTarget) -> Option<NodeId> + 'h>,
    #[allow(clippy::type_complexity)]
    rebuild: Box<dyn FnMut(&Sim<A>, NodeId) -> A + 'h>,
    /// Log of applied (and skipped) actions, for failure reports.
    applied: Vec<(SimTime, String)>,
}

impl<'h, A: Actor> ChaosDriver<'h, A> {
    /// Builds a driver for `plan`. `scope` lists every node that partition
    /// and degradation windows sever the target from (servers, clients,
    /// admin). `base_net` is the config degraded links derive from.
    pub fn new(
        plan: &FaultPlan,
        scope: Vec<NodeId>,
        base_net: NetConfig,
        resolve: impl FnMut(&Sim<A>, &FaultTarget) -> Option<NodeId> + 'h,
        rebuild: impl FnMut(&Sim<A>, NodeId) -> A + 'h,
    ) -> Self {
        let mut driver = ChaosDriver {
            queue: Vec::new(),
            next_seq: 0,
            scope,
            cuts: BTreeMap::new(),
            degrades: BTreeMap::new(),
            corrupts: BTreeMap::new(),
            base_net,
            resolve: Box::new(resolve),
            rebuild: Box::new(rebuild),
            applied: Vec::new(),
        };
        for ev in plan.sorted() {
            driver.push(ev.at, Action::Fire(ev));
        }
        driver
    }

    /// True when no fault or cure remains scheduled.
    pub fn done(&self) -> bool {
        self.queue.is_empty()
    }

    /// The log of applied/skipped actions, for replay diagnostics.
    pub fn applied(&self) -> &[(SimTime, String)] {
        &self.applied
    }

    fn push(&mut self, at: SimTime, action: Action) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.queue.partition_point(|&(t, s, _)| (t, s) <= (at, seq));
        self.queue.insert(idx, (at, seq, action));
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Advances the simulation to `until`, firing every scheduled fault and
    /// cure on the way.
    pub fn run_until(&mut self, sim: &mut Sim<A>, until: SimTime) {
        while let Some(&(at, _, _)) = self.queue.first() {
            if at > until {
                break;
            }
            sim.run_until(at);
            let (_, _, action) = self.queue.remove(0);
            self.apply(sim, at, action);
        }
        sim.run_until(until);
    }

    fn note(&mut self, at: SimTime, line: String) {
        self.applied.push((at, line));
    }

    fn apply(&mut self, sim: &mut Sim<A>, at: SimTime, action: Action) {
        match action {
            Action::Fire(ev) => {
                let Some(node) = (self.resolve)(sim, &ev.target) else {
                    self.note(at, format!("skip {} (unresolved)", ev.target));
                    return;
                };
                match ev.kind {
                    FaultKind::Crash { restart_after } => {
                        if !sim.is_up(node) {
                            self.note(at, format!("skip crash {node} (already down)"));
                            return;
                        }
                        sim.crash(node);
                        sim.metrics_mut().incr("chaos.crashes", 1);
                        self.note(at, format!("crash {node} (as {})", ev.target));
                        if let Some(d) = restart_after {
                            self.push(at + d, Action::Restart(node));
                        }
                    }
                    FaultKind::Partition { heal_after } => {
                        for peer in self.scope.clone() {
                            if peer == node {
                                continue;
                            }
                            let k = Self::key(node, peer);
                            let count = self.cuts.entry(k).or_insert(0);
                            *count += 1;
                            if *count == 1 {
                                sim.block_link(node, peer);
                            }
                        }
                        sim.metrics_mut().incr("chaos.partitions", 1);
                        self.note(
                            at,
                            format!("partition {node} (as {}) for {heal_after}", ev.target),
                        );
                        self.push(at + heal_after, Action::HealPartition(node));
                    }
                    FaultKind::Degrade {
                        drop_rate,
                        duplicate_rate,
                        extra_delay,
                        heal_after,
                    } => {
                        let cfg = self
                            .base_net
                            .clone()
                            .with_drop_rate(drop_rate)
                            .with_duplicate_rate(duplicate_rate)
                            .with_extra_delay(extra_delay);
                        for peer in self.scope.clone() {
                            if peer == node {
                                continue;
                            }
                            *self.degrades.entry(Self::key(node, peer)).or_insert(0) += 1;
                            sim.set_link(node, peer, cfg.clone());
                        }
                        sim.metrics_mut().incr("chaos.degrades", 1);
                        self.note(
                            at,
                            format!("degrade {node} (as {}) for {heal_after}", ev.target),
                        );
                        self.push(at + heal_after, Action::ClearDegrade(node));
                    }
                    FaultKind::Corrupt {
                        bit_flip_rate,
                        truncate_rate,
                        duplicate_rate,
                        heal_after,
                    } => {
                        // Bit flips and truncations are both caught by the
                        // frame CRC, so in the simulation they collapse into
                        // one detected-corruption rate; duplicates pass the
                        // check and deliver twice.
                        let cfg = self
                            .base_net
                            .clone()
                            .with_corrupt_rate((bit_flip_rate + truncate_rate).clamp(0.0, 1.0))
                            .with_duplicate_rate(duplicate_rate);
                        for peer in self.scope.clone() {
                            if peer == node {
                                continue;
                            }
                            *self.corrupts.entry(Self::key(node, peer)).or_insert(0) += 1;
                            sim.set_link(node, peer, cfg.clone());
                        }
                        sim.metrics_mut().incr("chaos.corruptions", 1);
                        self.note(
                            at,
                            format!("corrupt {node} (as {}) for {heal_after}", ev.target),
                        );
                        self.push(at + heal_after, Action::ClearCorrupt(node));
                    }
                    FaultKind::Disk {
                        fault,
                        restart_after,
                    } => {
                        if !sim.is_up(node) {
                            self.note(at, format!("skip disk fault {node} (already down)"));
                            return;
                        }
                        // Stable storage in the simulator is synchronously
                        // durable, so every disk-fault flavour is its
                        // post-integrity-check outcome: crash now, restart
                        // from the last consistent prefix.
                        sim.crash(node);
                        sim.metrics_mut().incr("chaos.disk_faults", 1);
                        self.note(
                            at,
                            format!("disk fault {} on {node} (as {})", fault.name(), ev.target),
                        );
                        self.push(at + restart_after, Action::Restart(node));
                    }
                }
            }
            Action::Restart(node) => {
                if sim.is_up(node) {
                    self.note(at, format!("skip restart {node} (already up)"));
                    return;
                }
                let actor = (self.rebuild)(sim, node);
                sim.restart(node, actor);
                self.note(at, format!("restart {node}"));
            }
            Action::HealPartition(node) => {
                for peer in self.scope.clone() {
                    if peer == node {
                        continue;
                    }
                    let k = Self::key(node, peer);
                    if let Some(count) = self.cuts.get_mut(&k) {
                        *count -= 1;
                        if *count == 0 {
                            self.cuts.remove(&k);
                            sim.unblock_link(node, peer);
                        }
                    }
                }
                self.note(at, format!("heal {node}"));
            }
            Action::ClearDegrade(node) => {
                for peer in self.scope.clone() {
                    if peer == node {
                        continue;
                    }
                    let k = Self::key(node, peer);
                    if let Some(count) = self.degrades.get_mut(&k) {
                        *count -= 1;
                        if *count == 0 {
                            self.degrades.remove(&k);
                            sim.clear_link(node, peer);
                        }
                    }
                }
                self.note(at, format!("clear degrade {node}"));
            }
            Action::ClearCorrupt(node) => {
                for peer in self.scope.clone() {
                    if peer == node {
                        continue;
                    }
                    let k = Self::key(node, peer);
                    if let Some(count) = self.corrupts.get_mut(&k) {
                        *count -= 1;
                        if *count == 0 {
                            self.corrupts.remove(&k);
                            sim.clear_link(node, peer);
                        }
                    }
                }
                self.note(at, format!("clear corrupt {node}"));
            }
        }
    }
}

/// Folds the run's fault/lifecycle interleavings into a compact bitmask.
///
/// Each bit marks one of the adversarial windows the close-point rule has
/// to survive — a fault landing *inside* a lifecycle gap rather than
/// between gaps. The coverage-guided sweep treats a previously unseen
/// bitmask as novelty worth keeping in the corpus, because two runs with
/// the same fault count but different interleaving bits stress different
/// proofs.
#[derive(Clone, Debug, Default)]
pub struct LifecycleCoverage {
    bits: u64,
    /// Epochs sealed but whose successor has not anchored yet.
    sealed_open: BTreeSet<u64>,
    /// Epochs anchored but with no first commit yet.
    anchored_dry: BTreeSet<u64>,
    /// Outstanding transfer requests per provider node.
    pending_serves: BTreeMap<NodeId, u64>,
}

impl LifecycleCoverage {
    /// A `Reconfigure` was proposed while an earlier epoch was still in
    /// its seal→anchor gap: two reconfigurations racing.
    pub const OVERLAPPING_RECONFIGS: u64 = 1 << 0;
    /// A node crashed inside a seal→anchor gap.
    pub const CRASH_IN_SEAL_WINDOW: u64 = 1 << 1;
    /// A transfer donor died with a serve outstanding.
    pub const DONOR_DEATH_MID_TRANSFER: u64 = 1 << 2;
    /// A node restarted before the newest epoch produced its first commit.
    pub const RESTART_BEFORE_FIRST_COMMIT: u64 = 1 << 3;
    /// At least one corrupted message was detected and discarded.
    pub const CORRUPTION_DETECTED: u64 = 1 << 4;
    /// A partition swallowed traffic inside a seal→anchor gap.
    pub const PARTITION_IN_SEAL_WINDOW: u64 = 1 << 5;
    /// Any node crashed while some transfer was still outstanding.
    pub const CRASH_MID_TRANSFER: u64 = 1 << 6;

    /// A fresh observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated signature bitmask.
    pub fn signature(&self) -> u64 {
        self.bits
    }

    /// Human-readable names of every set bit, for artifacts and logs.
    pub fn names(&self) -> Vec<&'static str> {
        const ALL: [(u64, &str); 7] = [
            (
                LifecycleCoverage::OVERLAPPING_RECONFIGS,
                "overlapping_reconfigs",
            ),
            (
                LifecycleCoverage::CRASH_IN_SEAL_WINDOW,
                "crash_in_seal_window",
            ),
            (
                LifecycleCoverage::DONOR_DEATH_MID_TRANSFER,
                "donor_death_mid_transfer",
            ),
            (
                LifecycleCoverage::RESTART_BEFORE_FIRST_COMMIT,
                "restart_before_first_commit",
            ),
            (
                LifecycleCoverage::CORRUPTION_DETECTED,
                "corruption_detected",
            ),
            (
                LifecycleCoverage::PARTITION_IN_SEAL_WINDOW,
                "partition_in_seal_window",
            ),
            (LifecycleCoverage::CRASH_MID_TRANSFER, "crash_mid_transfer"),
        ];
        ALL.iter()
            .filter(|(bit, _)| self.bits & bit != 0)
            .map(|&(_, name)| name)
            .collect()
    }
}

impl Observer for LifecycleCoverage {
    fn on_event(&mut self, _at: SimTime, ev: &SimEvent) {
        match ev {
            SimEvent::Domain { node, event } => match *event {
                DomainEvent::ReconfigProposed { .. } if !self.sealed_open.is_empty() => {
                    self.bits |= Self::OVERLAPPING_RECONFIGS;
                }
                DomainEvent::EpochSealed { epoch, .. } => {
                    self.sealed_open.insert(epoch);
                }
                DomainEvent::Anchored { epoch } => {
                    // Anchoring epoch e closes the gap opened by sealing
                    // its predecessor e-1.
                    self.sealed_open.remove(&epoch.saturating_sub(1));
                    self.anchored_dry.insert(epoch);
                }
                DomainEvent::FirstCommit { epoch, .. } => {
                    self.anchored_dry.remove(&epoch);
                }
                DomainEvent::TransferRequested { provider, .. } => {
                    *self.pending_serves.entry(provider).or_insert(0) += 1;
                }
                DomainEvent::TransferServed { .. } => {
                    // The serve is emitted by the provider itself.
                    if let Some(n) = self.pending_serves.get_mut(node) {
                        *n = n.saturating_sub(1);
                        if *n == 0 {
                            self.pending_serves.remove(node);
                        }
                    }
                }
                _ => {}
            },
            SimEvent::Crashed { node } => {
                if !self.sealed_open.is_empty() {
                    self.bits |= Self::CRASH_IN_SEAL_WINDOW;
                }
                if self.pending_serves.get(node).copied().unwrap_or(0) > 0 {
                    self.bits |= Self::DONOR_DEATH_MID_TRANSFER;
                }
                if !self.pending_serves.is_empty() {
                    self.bits |= Self::CRASH_MID_TRANSFER;
                }
            }
            SimEvent::Restarted { .. } if !self.anchored_dry.is_empty() => {
                self.bits |= Self::RESTART_BEFORE_FIRST_COMMIT;
            }
            SimEvent::MsgDropped { reason, .. } => match reason {
                DropReason::Corrupted => self.bits |= Self::CORRUPTION_DETECTED,
                DropReason::Partitioned if !self.sealed_open.is_empty() => {
                    self.bits |= Self::PARTITION_IN_SEAL_WINDOW;
                }
                _ => {}
            },
            _ => {}
        }
    }
}

/// Coverage accumulated across a sweep: the set of distinct event-digest
/// prefix checkpoints (see
/// [`EventDigest::prefix_digests`](crate::observe::EventDigest::prefix_digests))
/// and distinct lifecycle signatures seen so far. A run that contributes
/// anything new to either set is *novel* and earns a slot in the mutation
/// corpus.
#[derive(Clone, Debug, Default)]
pub struct CoverageMap {
    prefixes: BTreeSet<(u64, u64)>,
    signatures: BTreeSet<u64>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges one run's coverage in; returns the number of novel items
    /// (new prefix checkpoints plus a new signature counting 1).
    pub fn observe(&mut self, prefixes: &[(u64, u64)], signature: u64) -> u64 {
        let mut novel = 0;
        for &p in prefixes {
            if self.prefixes.insert(p) {
                novel += 1;
            }
        }
        if self.signatures.insert(signature) {
            novel += 1;
        }
        novel
    }

    /// Distinct `(event_count, digest)` prefix checkpoints seen.
    pub fn unique_prefixes(&self) -> usize {
        self.prefixes.len()
    }

    /// Distinct lifecycle signatures seen.
    pub fn unique_signatures(&self) -> usize {
        self.signatures.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{Context, Message, Timer};

    #[derive(Clone, Debug)]
    struct Ping;
    impl Message for Ping {}

    /// Counts deliveries; persists the count so a restart can prove it
    /// recovered from storage.
    struct Counter {
        received: u64,
    }

    impl Actor for Counter {
        type Msg = Ping;
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            self.received = ctx.storage().get_u64("received").unwrap_or(0);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, _msg: Ping) {
            self.received += 1;
            ctx.storage().put_u64("received", self.received);
            if self.received < 20 {
                ctx.send(from, Ping);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Ping>, _timer: Timer) {}
    }

    fn sim_pair() -> (Sim<Counter>, NodeId, NodeId) {
        let mut sim = Sim::new(3, NetConfig::lan());
        let a = sim.add_node(Counter { received: 0 });
        let b = sim.add_node(Counter { received: 0 });
        (sim, a, b)
    }

    fn driver_for<'h>(plan: &FaultPlan, scope: Vec<NodeId>) -> ChaosDriver<'h, Counter> {
        ChaosDriver::new(
            plan,
            scope,
            NetConfig::lan(),
            |_sim, t| match t {
                FaultTarget::Node(n) => Some(*n),
                _ => None,
            },
            |_sim, _n| Counter { received: 0 },
        )
    }

    #[test]
    fn same_seed_same_plan() {
        let (from, until) = (SimTime::ZERO, SimTime::from_secs(2));
        let a = ChaosGen::new(42).sample(from, until, 8);
        let b = ChaosGen::new(42).sample(from, until, 8);
        assert_eq!(a, b);
        let c = ChaosGen::new(43).sample(from, until, 8);
        assert_ne!(a, c, "different seeds should give different plans");
        // Sorted by fire time, all within the window.
        for w in a.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for e in &a.events {
            assert!(e.at >= from && e.at < until);
        }
    }

    #[test]
    fn healed_by_covers_every_window() {
        let plan = FaultPlan::new()
            .crash_at(
                SimTime::from_millis(100),
                FaultTarget::CurrentLeader,
                Some(SimDuration::from_millis(500)),
            )
            .partition_at(
                SimTime::from_millis(300),
                FaultTarget::Joiner,
                SimDuration::from_millis(200),
            );
        assert_eq!(plan.healed_by(), SimTime::from_millis(600));
        assert!(!plan.describe().is_empty());
    }

    #[test]
    fn crash_and_restart_fire_at_the_scheduled_times() {
        let (mut sim, a, b) = sim_pair();
        let plan = FaultPlan::new().crash_at(
            SimTime::from_millis(10),
            FaultTarget::Node(b),
            Some(SimDuration::from_millis(50)),
        );
        let mut driver = driver_for(&plan, vec![a, b]);
        sim.inject(a, b, Ping);
        driver.run_until(&mut sim, SimTime::from_millis(9));
        assert!(sim.is_up(b));
        driver.run_until(&mut sim, SimTime::from_millis(30));
        assert!(!sim.is_up(b));
        driver.run_until(&mut sim, SimTime::from_millis(100));
        assert!(sim.is_up(b));
        assert!(driver.done());
        // The restarted actor recovered its count from stable storage.
        assert!(sim.actor(b).unwrap().received >= 1);
        assert_eq!(sim.metrics().counter("chaos.crashes"), 1);
    }

    #[test]
    fn overlapping_partitions_heal_only_when_the_last_lifts() {
        let (mut sim, a, b) = sim_pair();
        let plan = FaultPlan::new()
            .partition_at(
                SimTime::from_millis(10),
                FaultTarget::Node(b),
                SimDuration::from_millis(100),
            )
            .partition_at(
                SimTime::from_millis(50),
                FaultTarget::Node(b),
                SimDuration::from_millis(100),
            );
        let mut driver = driver_for(&plan, vec![a, b]);
        driver.run_until(&mut sim, SimTime::from_millis(60));
        // First heal at 110ms must not reopen the link: the second window
        // runs to 150ms.
        driver.run_until(&mut sim, SimTime::from_millis(120));
        sim.inject(a, b, Ping);
        sim.run_until(SimTime::from_millis(140));
        assert_eq!(sim.metrics().counter("net.delivered"), 0);
        driver.run_until(&mut sim, SimTime::from_millis(200));
        sim.inject(a, b, Ping);
        sim.run_until(SimTime::from_millis(250));
        assert!(sim.metrics().counter("net.delivered") >= 1);
        assert!(driver.done());
    }

    #[test]
    fn degrade_window_drops_then_clears() {
        let (mut sim, a, b) = sim_pair();
        let plan = FaultPlan::new().degrade_at(
            SimTime::from_millis(10),
            FaultTarget::Node(b),
            1.0,
            0.0,
            SimDuration::ZERO,
            SimDuration::from_millis(100),
        );
        let mut driver = driver_for(&plan, vec![a, b]);
        driver.run_until(&mut sim, SimTime::from_millis(20));
        sim.inject(a, b, Ping);
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.metrics().counter("net.delivered"), 0);
        assert_eq!(sim.metrics().counter("net.dropped"), 1);
        driver.run_until(&mut sim, SimTime::from_millis(200));
        sim.inject(a, b, Ping);
        sim.run_until(SimTime::from_millis(300));
        assert!(sim.metrics().counter("net.delivered") >= 1);
    }

    #[test]
    fn corrupt_window_surfaces_as_detected_drops_then_clears() {
        let (mut sim, a, b) = sim_pair();
        let plan = FaultPlan::new().corrupt_at(
            SimTime::from_millis(10),
            FaultTarget::Node(b),
            1.0,
            0.0,
            0.0,
            SimDuration::from_millis(100),
        );
        let mut driver = driver_for(&plan, vec![a, b]);
        driver.run_until(&mut sim, SimTime::from_millis(20));
        sim.inject(a, b, Ping);
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.metrics().counter("net.delivered"), 0);
        assert_eq!(sim.metrics().counter("net.corrupted"), 1);
        assert_eq!(sim.metrics().counter("chaos.corruptions"), 1);
        driver.run_until(&mut sim, SimTime::from_millis(200));
        sim.inject(a, b, Ping);
        sim.run_until(SimTime::from_millis(300));
        assert!(sim.metrics().counter("net.delivered") >= 1);
        assert_eq!(sim.metrics().counter("net.corrupted"), 1);
    }

    #[test]
    fn disk_faults_crash_and_recover_from_stable_storage() {
        let (mut sim, a, b) = sim_pair();
        sim.inject(a, b, Ping);
        sim.run_until(SimTime::from_millis(5));
        let plan = FaultPlan::new().disk_at(
            SimTime::from_millis(10),
            FaultTarget::Node(b),
            DiskFault::TornWalTail,
            SimDuration::from_millis(50),
        );
        let mut driver = ChaosDriver::new(
            &plan,
            vec![a, b],
            NetConfig::lan(),
            |_sim, t| match t {
                FaultTarget::Node(n) => Some(*n),
                _ => None,
            },
            // Rebuild from stable storage, as a real recovery would.
            |sim, n| Counter {
                received: sim.storage(n).get_u64("received").unwrap_or(0),
            },
        );
        driver.run_until(&mut sim, SimTime::from_millis(30));
        assert!(!sim.is_up(b));
        assert_eq!(sim.metrics().counter("chaos.disk_faults"), 1);
        driver.run_until(&mut sim, SimTime::from_millis(100));
        assert!(sim.is_up(b));
        assert!(driver.done());
        // The restart recovered the pre-fault count from the consistent
        // prefix (the sim store is synchronously durable).
        assert!(sim.actor(b).unwrap().received >= 1);
    }

    #[test]
    fn plan_mutation_is_deterministic_and_lineage_replays() {
        let (from, until) = (SimTime::ZERO, SimTime::from_secs(2));
        let lineage = PlanLineage::seed(0xFA17).child(3).child(12);
        let a = lineage.materialize(from, until, 6);
        let b = lineage.materialize(from, until, 6);
        assert_eq!(a, b, "equal lineages must materialize equal plans");
        let parent = PlanLineage::seed(0xFA17).materialize(from, until, 6);
        assert_ne!(a, parent, "mutations must actually change the plan");
        let sibling = PlanLineage::seed(0xFA17).child(4).child(12);
        assert_ne!(
            a,
            sibling.materialize(from, until, 6),
            "different mutation indices must diverge"
        );
    }

    #[test]
    fn lineage_display_and_parse_round_trip() {
        for lineage in [
            PlanLineage::seed(0xFA17),
            PlanLineage::seed(42).child(7),
            PlanLineage::seed(0xDEAD_BEEF)
                .child(0)
                .child(31)
                .with_perm(5),
        ] {
            let rendered = lineage.to_string();
            assert_eq!(
                PlanLineage::parse(&rendered),
                Some(lineage.clone()),
                "{rendered}"
            );
        }
        assert_eq!(
            PlanLineage::parse("0xfa17:3,12#5"),
            Some(PlanLineage::seed(0xFA17).child(3).child(12).with_perm(5))
        );
        assert_eq!(
            PlanLineage::parse("99"),
            Some(PlanLineage::seed(99)),
            "decimal base seeds parse too"
        );
        assert_eq!(PlanLineage::parse("0xzz"), None);
        assert_eq!(PlanLineage::parse("1:x"), None);
    }

    #[test]
    fn link_delay_permutations_enumerate_27_distinct_assignments() {
        let mut seen = std::collections::BTreeSet::new();
        for perm in 0..27 {
            seen.insert(link_delay_permutation(perm));
        }
        assert_eq!(seen.len(), 27);
        // Indexing wraps, so any u64 is a valid permutation id.
        assert_eq!(link_delay_permutation(27), link_delay_permutation(0));
    }

    #[test]
    fn lifecycle_coverage_flags_the_adversarial_interleavings() {
        use crate::observe::{DropReason, SimEvent};
        let t = SimTime::from_millis(1);
        let node = NodeId(0);
        let donor = NodeId(1);
        let mut cov = LifecycleCoverage::new();
        assert_eq!(cov.signature(), 0);
        // Seal epoch 1, then a second reconfigure races into the gap.
        let seal = |e| SimEvent::Domain {
            node,
            event: DomainEvent::EpochSealed {
                epoch: e,
                seal_slot: 9,
            },
        };
        cov.on_event(t, &seal(1));
        cov.on_event(
            t,
            &SimEvent::Domain {
                node,
                event: DomainEvent::ReconfigProposed { epoch: 2 },
            },
        );
        assert!(cov.signature() & LifecycleCoverage::OVERLAPPING_RECONFIGS != 0);
        // Crash and a partitioned drop inside the seal window.
        cov.on_event(t, &SimEvent::Crashed { node });
        cov.on_event(
            t,
            &SimEvent::MsgDropped {
                from: node,
                to: donor,
                label: "x",
                reason: DropReason::Partitioned,
            },
        );
        assert!(cov.signature() & LifecycleCoverage::CRASH_IN_SEAL_WINDOW != 0);
        assert!(cov.signature() & LifecycleCoverage::PARTITION_IN_SEAL_WINDOW != 0);
        // Anchoring epoch 2 closes the gap; a restart before its first
        // commit is flagged, and the first commit clears the dry set.
        cov.on_event(
            t,
            &SimEvent::Domain {
                node,
                event: DomainEvent::Anchored { epoch: 2 },
            },
        );
        cov.on_event(t, &SimEvent::Restarted { node });
        assert!(cov.signature() & LifecycleCoverage::RESTART_BEFORE_FIRST_COMMIT != 0);
        // Donor death mid-transfer.
        cov.on_event(
            t,
            &SimEvent::Domain {
                node,
                event: DomainEvent::TransferRequested {
                    epoch: 2,
                    provider: donor,
                },
            },
        );
        cov.on_event(t, &SimEvent::Crashed { node: donor });
        assert!(cov.signature() & LifecycleCoverage::DONOR_DEATH_MID_TRANSFER != 0);
        assert!(cov.signature() & LifecycleCoverage::CRASH_MID_TRANSFER != 0);
        // Corruption detection.
        cov.on_event(
            t,
            &SimEvent::MsgDropped {
                from: node,
                to: donor,
                label: "x",
                reason: DropReason::Corrupted,
            },
        );
        assert!(cov.signature() & LifecycleCoverage::CORRUPTION_DETECTED != 0);
        assert_eq!(cov.names().len(), 7);
    }

    #[test]
    fn coverage_map_counts_novelty_once() {
        let mut map = CoverageMap::new();
        let novel = map.observe(&[(1, 10), (2, 20)], 0b101);
        assert_eq!(novel, 3);
        // Re-observing the same run contributes nothing.
        assert_eq!(map.observe(&[(1, 10), (2, 20)], 0b101), 0);
        // A run sharing one checkpoint but diverging later is partially
        // novel.
        assert_eq!(map.observe(&[(1, 10), (2, 21)], 0b101), 1);
        assert_eq!(map.unique_prefixes(), 3);
        assert_eq!(map.unique_signatures(), 1);
        assert_eq!(map.observe(&[], 0b111), 1);
        assert_eq!(map.unique_signatures(), 2);
    }

    #[test]
    fn unresolved_targets_are_skipped_not_fatal() {
        let (mut sim, a, b) = sim_pair();
        let plan =
            FaultPlan::new().crash_at(SimTime::from_millis(10), FaultTarget::CurrentLeader, None);
        let mut driver = driver_for(&plan, vec![a, b]);
        driver.run_until(&mut sim, SimTime::from_millis(100));
        assert!(sim.is_up(a) && sim.is_up(b));
        assert!(driver
            .applied()
            .iter()
            .any(|(_, line)| line.contains("skip")));
    }
}
