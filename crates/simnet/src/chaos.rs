//! Deterministic fault injection: declarative fault plans, a seeded chaos
//! generator, and a driver that applies plans to a running [`Sim`].
//!
//! A [`FaultPlan`] is pure data: a schedule of crash/restart, partition/heal
//! and link-degradation windows, each aimed at a [`FaultTarget`]. Targets
//! may be concrete node ids or *roles* ("the current leader", "the transfer
//! donor", "the joiner") that the harness resolves at fire time, so one plan
//! applies to any system under test. [`ChaosGen`] samples random plans from
//! a seeded [`SimRng`], which makes every chaos run a replayable seed: a
//! failure reproduces from `(scenario, chaos seed)` alone.
//!
//! [`ChaosDriver`] executes a plan against a [`Sim`]: it advances virtual
//! time to each fault, resolves the target through a harness-supplied
//! closure, applies the fault through the simulator's own fault API
//! ([`Sim::crash`], [`Sim::block_link`], [`Sim::set_link`]), and schedules
//! the matching cure (restart, heal, clear) as a follow-up action. Crashed
//! nodes are rebuilt through a second closure — the *restart factory* —
//! which recovers the actor from its surviving [`StableStore`], exactly as
//! a real process restarts from disk.
//!
//! Everything here is deterministic: resolution is a pure function of sim
//! state, actions are totally ordered by `(time, insertion seq)`, and the
//! generator consumes only its own RNG.
//!
//! [`StableStore`]: crate::StableStore

use std::collections::BTreeMap;

use crate::actor::Actor;
use crate::net::NetConfig;
use crate::rng::SimRng;
use crate::sim::{NodeId, Sim};
use crate::time::{SimDuration, SimTime};

/// Who a fault hits. Role targets are resolved by the harness when the
/// fault fires, against the live simulation state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// A specific node id.
    Node(NodeId),
    /// The `k % n`-th of the harness's `n` server nodes (joiners included).
    /// Lets a seeded generator pick "some server" without knowing ids.
    ServerIdx(u64),
    /// Whoever leads the active consensus instance at fire time.
    CurrentLeader,
    /// The node serving (or about to serve) a state transfer.
    TransferDonor,
    /// The first configured joiner.
    Joiner,
}

impl std::fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultTarget::Node(n) => write!(f, "{n}"),
            FaultTarget::ServerIdx(k) => write!(f, "server#{k}"),
            FaultTarget::CurrentLeader => write!(f, "leader"),
            FaultTarget::TransferDonor => write!(f, "donor"),
            FaultTarget::Joiner => write!(f, "joiner"),
        }
    }
}

/// What happens to the target.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Crash the node. With `restart_after` set, the harness's restart
    /// factory rebuilds it from stable storage after that delay; `None`
    /// leaves it down for the rest of the run.
    Crash {
        /// Delay until the restart, `None` = never.
        restart_after: Option<SimDuration>,
    },
    /// Isolate the target from every other node for the window.
    Partition {
        /// How long the target stays cut off.
        heal_after: SimDuration,
    },
    /// Degrade every link of the target (loss, duplication, extra delay)
    /// for the window.
    Degrade {
        /// Probability each message on the link is dropped.
        drop_rate: f64,
        /// Probability each message on the link is duplicated.
        duplicate_rate: f64,
        /// Added one-way delay on the link.
        extra_delay: SimDuration,
        /// How long the degradation lasts.
        heal_after: SimDuration,
    },
}

/// One scheduled fault.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    /// Virtual time at which the fault fires.
    pub at: SimTime,
    /// Who it hits (resolved at fire time for role targets).
    pub target: FaultTarget,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// When this fault's effect is fully cured (restart or heal). A crash
    /// without a restart never cures; its fire time is returned.
    fn cured_at(&self) -> SimTime {
        match self.kind {
            FaultKind::Crash { restart_after } => {
                self.at + restart_after.unwrap_or(SimDuration::ZERO)
            }
            FaultKind::Partition { heal_after } => self.at + heal_after,
            FaultKind::Degrade { heal_after, .. } => self.at + heal_after,
        }
    }
}

/// A declarative, deterministic schedule of faults. Pure data: apply it
/// with a [`ChaosDriver`], or build scenarios around it by hand.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults (any order; the driver sorts by fire time).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a crash (with optional restart), builder-style.
    pub fn crash_at(
        mut self,
        at: SimTime,
        target: FaultTarget,
        restart_after: Option<SimDuration>,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            target,
            kind: FaultKind::Crash { restart_after },
        });
        self
    }

    /// Adds a full isolation window, builder-style.
    pub fn partition_at(
        mut self,
        at: SimTime,
        target: FaultTarget,
        heal_after: SimDuration,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            target,
            kind: FaultKind::Partition { heal_after },
        });
        self
    }

    /// Adds a link-degradation window, builder-style.
    pub fn degrade_at(
        mut self,
        at: SimTime,
        target: FaultTarget,
        drop_rate: f64,
        duplicate_rate: f64,
        extra_delay: SimDuration,
        heal_after: SimDuration,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            target,
            kind: FaultKind::Degrade {
                drop_rate,
                duplicate_rate,
                extra_delay,
                heal_after,
            },
        });
        self
    }

    /// The time by which every fault in the plan has been cured (every
    /// crashed node restarted, every window closed). Crashes without a
    /// restart count as cured at their fire time — the cluster is expected
    /// to survive them on the remaining nodes.
    pub fn healed_by(&self) -> SimTime {
        self.events
            .iter()
            .map(FaultEvent::cured_at)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// The events sorted by fire time (stable, so same-time events keep
    /// their plan order).
    pub fn sorted(&self) -> Vec<FaultEvent> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| e.at);
        evs
    }

    /// A compact human-readable description, used in replay logs.
    pub fn describe(&self) -> String {
        let parts: Vec<String> = self
            .sorted()
            .iter()
            .map(|e| {
                let what = match e.kind {
                    FaultKind::Crash {
                        restart_after: Some(d),
                    } => format!("crash+restart@{d}"),
                    FaultKind::Crash {
                        restart_after: None,
                    } => "crash".to_owned(),
                    FaultKind::Partition { heal_after } => format!("partition@{heal_after}"),
                    FaultKind::Degrade {
                        drop_rate,
                        heal_after,
                        ..
                    } => format!("degrade(p={drop_rate:.2})@{heal_after}"),
                };
                format!("[{} {} {}]", e.at, e.target, what)
            })
            .collect();
        parts.join(" ")
    }
}

/// Seeded sampler of random-but-replayable fault plans.
///
/// Two generators with the same seed produce identical plans, so a failing
/// chaos run is fully described by its seed.
pub struct ChaosGen {
    rng: SimRng,
}

impl ChaosGen {
    /// A generator producing the deterministic plan sequence for `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosGen {
            rng: SimRng::seed_from_u64(seed ^ 0xC4A0_5FA0_17AD_D00D),
        }
    }

    /// Samples a plan of `n_faults` events, each firing in `[from, until)`,
    /// mixing crashes (always with a restart), partitions and degradation
    /// windows over role and indexed-server targets.
    pub fn sample(&mut self, from: SimTime, until: SimTime, n_faults: usize) -> FaultPlan {
        let span = until.since(from).as_micros().max(1);
        let mut plan = FaultPlan::new();
        for _ in 0..n_faults {
            let at = from + SimDuration::from_micros(self.rng.gen_range(0..span));
            let target = match self.rng.gen_range(0..10u32) {
                0..=2 => FaultTarget::CurrentLeader,
                3..=4 => FaultTarget::TransferDonor,
                5..=6 => FaultTarget::Joiner,
                _ => FaultTarget::ServerIdx(self.rng.next_u64()),
            };
            let kind = match self.rng.gen_range(0..10u32) {
                0..=3 => FaultKind::Crash {
                    restart_after: Some(SimDuration::from_micros(
                        self.rng.gen_range(100_000..600_000u64),
                    )),
                },
                4..=7 => FaultKind::Partition {
                    heal_after: SimDuration::from_micros(self.rng.gen_range(100_000..400_000u64)),
                },
                _ => FaultKind::Degrade {
                    drop_rate: 0.1 + 0.4 * self.rng.next_f64(),
                    duplicate_rate: 0.2 * self.rng.next_f64(),
                    extra_delay: SimDuration::from_micros(self.rng.gen_range(0..20_000u64)),
                    heal_after: SimDuration::from_micros(self.rng.gen_range(100_000..400_000u64)),
                },
            };
            plan.events.push(FaultEvent { at, target, kind });
        }
        plan.events.sort_by_key(|e| e.at);
        plan
    }
}

/// A scheduled driver action: fire a plan event, or cure an applied fault.
#[derive(Debug)]
enum Action {
    Fire(FaultEvent),
    Restart(NodeId),
    HealPartition(NodeId),
    ClearDegrade(NodeId),
}

/// Applies a [`FaultPlan`] to a [`Sim`], resolving role targets and
/// rebuilding crashed actors through harness-supplied hooks.
///
/// `resolve` maps a [`FaultTarget`] to a live node (returning `None` skips
/// the event — e.g. no leader exists at that instant). `rebuild`
/// reconstructs a crashed node's actor from the simulation (typically from
/// [`Sim::storage`]). Both are called at deterministic points, so a driven
/// run remains a pure function of `(actors, seed, plan)`.
pub struct ChaosDriver<'h, A: Actor> {
    /// Pending actions ordered by `(time, seq)`; `seq` breaks ties by
    /// insertion order.
    queue: Vec<(SimTime, u64, Action)>,
    next_seq: u64,
    /// Every node the harness wants isolated targets cut off from.
    scope: Vec<NodeId>,
    /// Reference-counted severed pairs, so overlapping partitions heal
    /// correctly (a pair reopens only when its last partition lifts).
    cuts: BTreeMap<(NodeId, NodeId), u32>,
    /// Reference-counted degraded pairs (last clear removes the override).
    degrades: BTreeMap<(NodeId, NodeId), u32>,
    /// Base link config degraded windows derive from.
    base_net: NetConfig,
    #[allow(clippy::type_complexity)]
    resolve: Box<dyn FnMut(&Sim<A>, &FaultTarget) -> Option<NodeId> + 'h>,
    #[allow(clippy::type_complexity)]
    rebuild: Box<dyn FnMut(&Sim<A>, NodeId) -> A + 'h>,
    /// Log of applied (and skipped) actions, for failure reports.
    applied: Vec<(SimTime, String)>,
}

impl<'h, A: Actor> ChaosDriver<'h, A> {
    /// Builds a driver for `plan`. `scope` lists every node that partition
    /// and degradation windows sever the target from (servers, clients,
    /// admin). `base_net` is the config degraded links derive from.
    pub fn new(
        plan: &FaultPlan,
        scope: Vec<NodeId>,
        base_net: NetConfig,
        resolve: impl FnMut(&Sim<A>, &FaultTarget) -> Option<NodeId> + 'h,
        rebuild: impl FnMut(&Sim<A>, NodeId) -> A + 'h,
    ) -> Self {
        let mut driver = ChaosDriver {
            queue: Vec::new(),
            next_seq: 0,
            scope,
            cuts: BTreeMap::new(),
            degrades: BTreeMap::new(),
            base_net,
            resolve: Box::new(resolve),
            rebuild: Box::new(rebuild),
            applied: Vec::new(),
        };
        for ev in plan.sorted() {
            driver.push(ev.at, Action::Fire(ev));
        }
        driver
    }

    /// True when no fault or cure remains scheduled.
    pub fn done(&self) -> bool {
        self.queue.is_empty()
    }

    /// The log of applied/skipped actions, for replay diagnostics.
    pub fn applied(&self) -> &[(SimTime, String)] {
        &self.applied
    }

    fn push(&mut self, at: SimTime, action: Action) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.queue.partition_point(|&(t, s, _)| (t, s) <= (at, seq));
        self.queue.insert(idx, (at, seq, action));
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Advances the simulation to `until`, firing every scheduled fault and
    /// cure on the way.
    pub fn run_until(&mut self, sim: &mut Sim<A>, until: SimTime) {
        while let Some(&(at, _, _)) = self.queue.first() {
            if at > until {
                break;
            }
            sim.run_until(at);
            let (_, _, action) = self.queue.remove(0);
            self.apply(sim, at, action);
        }
        sim.run_until(until);
    }

    fn note(&mut self, at: SimTime, line: String) {
        self.applied.push((at, line));
    }

    fn apply(&mut self, sim: &mut Sim<A>, at: SimTime, action: Action) {
        match action {
            Action::Fire(ev) => {
                let Some(node) = (self.resolve)(sim, &ev.target) else {
                    self.note(at, format!("skip {} (unresolved)", ev.target));
                    return;
                };
                match ev.kind {
                    FaultKind::Crash { restart_after } => {
                        if !sim.is_up(node) {
                            self.note(at, format!("skip crash {node} (already down)"));
                            return;
                        }
                        sim.crash(node);
                        sim.metrics_mut().incr("chaos.crashes", 1);
                        self.note(at, format!("crash {node} (as {})", ev.target));
                        if let Some(d) = restart_after {
                            self.push(at + d, Action::Restart(node));
                        }
                    }
                    FaultKind::Partition { heal_after } => {
                        for peer in self.scope.clone() {
                            if peer == node {
                                continue;
                            }
                            let k = Self::key(node, peer);
                            let count = self.cuts.entry(k).or_insert(0);
                            *count += 1;
                            if *count == 1 {
                                sim.block_link(node, peer);
                            }
                        }
                        sim.metrics_mut().incr("chaos.partitions", 1);
                        self.note(
                            at,
                            format!("partition {node} (as {}) for {heal_after}", ev.target),
                        );
                        self.push(at + heal_after, Action::HealPartition(node));
                    }
                    FaultKind::Degrade {
                        drop_rate,
                        duplicate_rate,
                        extra_delay,
                        heal_after,
                    } => {
                        let cfg = self
                            .base_net
                            .clone()
                            .with_drop_rate(drop_rate)
                            .with_duplicate_rate(duplicate_rate)
                            .with_extra_delay(extra_delay);
                        for peer in self.scope.clone() {
                            if peer == node {
                                continue;
                            }
                            *self.degrades.entry(Self::key(node, peer)).or_insert(0) += 1;
                            sim.set_link(node, peer, cfg.clone());
                        }
                        sim.metrics_mut().incr("chaos.degrades", 1);
                        self.note(
                            at,
                            format!("degrade {node} (as {}) for {heal_after}", ev.target),
                        );
                        self.push(at + heal_after, Action::ClearDegrade(node));
                    }
                }
            }
            Action::Restart(node) => {
                if sim.is_up(node) {
                    self.note(at, format!("skip restart {node} (already up)"));
                    return;
                }
                let actor = (self.rebuild)(sim, node);
                sim.restart(node, actor);
                self.note(at, format!("restart {node}"));
            }
            Action::HealPartition(node) => {
                for peer in self.scope.clone() {
                    if peer == node {
                        continue;
                    }
                    let k = Self::key(node, peer);
                    if let Some(count) = self.cuts.get_mut(&k) {
                        *count -= 1;
                        if *count == 0 {
                            self.cuts.remove(&k);
                            sim.unblock_link(node, peer);
                        }
                    }
                }
                self.note(at, format!("heal {node}"));
            }
            Action::ClearDegrade(node) => {
                for peer in self.scope.clone() {
                    if peer == node {
                        continue;
                    }
                    let k = Self::key(node, peer);
                    if let Some(count) = self.degrades.get_mut(&k) {
                        *count -= 1;
                        if *count == 0 {
                            self.degrades.remove(&k);
                            sim.clear_link(node, peer);
                        }
                    }
                }
                self.note(at, format!("clear degrade {node}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{Context, Message, Timer};

    #[derive(Clone, Debug)]
    struct Ping;
    impl Message for Ping {}

    /// Counts deliveries; persists the count so a restart can prove it
    /// recovered from storage.
    struct Counter {
        received: u64,
    }

    impl Actor for Counter {
        type Msg = Ping;
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            self.received = ctx.storage().get_u64("received").unwrap_or(0);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, _msg: Ping) {
            self.received += 1;
            ctx.storage().put_u64("received", self.received);
            if self.received < 20 {
                ctx.send(from, Ping);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Ping>, _timer: Timer) {}
    }

    fn sim_pair() -> (Sim<Counter>, NodeId, NodeId) {
        let mut sim = Sim::new(3, NetConfig::lan());
        let a = sim.add_node(Counter { received: 0 });
        let b = sim.add_node(Counter { received: 0 });
        (sim, a, b)
    }

    fn driver_for<'h>(plan: &FaultPlan, scope: Vec<NodeId>) -> ChaosDriver<'h, Counter> {
        ChaosDriver::new(
            plan,
            scope,
            NetConfig::lan(),
            |_sim, t| match t {
                FaultTarget::Node(n) => Some(*n),
                _ => None,
            },
            |_sim, _n| Counter { received: 0 },
        )
    }

    #[test]
    fn same_seed_same_plan() {
        let (from, until) = (SimTime::ZERO, SimTime::from_secs(2));
        let a = ChaosGen::new(42).sample(from, until, 8);
        let b = ChaosGen::new(42).sample(from, until, 8);
        assert_eq!(a, b);
        let c = ChaosGen::new(43).sample(from, until, 8);
        assert_ne!(a, c, "different seeds should give different plans");
        // Sorted by fire time, all within the window.
        for w in a.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for e in &a.events {
            assert!(e.at >= from && e.at < until);
        }
    }

    #[test]
    fn healed_by_covers_every_window() {
        let plan = FaultPlan::new()
            .crash_at(
                SimTime::from_millis(100),
                FaultTarget::CurrentLeader,
                Some(SimDuration::from_millis(500)),
            )
            .partition_at(
                SimTime::from_millis(300),
                FaultTarget::Joiner,
                SimDuration::from_millis(200),
            );
        assert_eq!(plan.healed_by(), SimTime::from_millis(600));
        assert!(!plan.describe().is_empty());
    }

    #[test]
    fn crash_and_restart_fire_at_the_scheduled_times() {
        let (mut sim, a, b) = sim_pair();
        let plan = FaultPlan::new().crash_at(
            SimTime::from_millis(10),
            FaultTarget::Node(b),
            Some(SimDuration::from_millis(50)),
        );
        let mut driver = driver_for(&plan, vec![a, b]);
        sim.inject(a, b, Ping);
        driver.run_until(&mut sim, SimTime::from_millis(9));
        assert!(sim.is_up(b));
        driver.run_until(&mut sim, SimTime::from_millis(30));
        assert!(!sim.is_up(b));
        driver.run_until(&mut sim, SimTime::from_millis(100));
        assert!(sim.is_up(b));
        assert!(driver.done());
        // The restarted actor recovered its count from stable storage.
        assert!(sim.actor(b).unwrap().received >= 1);
        assert_eq!(sim.metrics().counter("chaos.crashes"), 1);
    }

    #[test]
    fn overlapping_partitions_heal_only_when_the_last_lifts() {
        let (mut sim, a, b) = sim_pair();
        let plan = FaultPlan::new()
            .partition_at(
                SimTime::from_millis(10),
                FaultTarget::Node(b),
                SimDuration::from_millis(100),
            )
            .partition_at(
                SimTime::from_millis(50),
                FaultTarget::Node(b),
                SimDuration::from_millis(100),
            );
        let mut driver = driver_for(&plan, vec![a, b]);
        driver.run_until(&mut sim, SimTime::from_millis(60));
        // First heal at 110ms must not reopen the link: the second window
        // runs to 150ms.
        driver.run_until(&mut sim, SimTime::from_millis(120));
        sim.inject(a, b, Ping);
        sim.run_until(SimTime::from_millis(140));
        assert_eq!(sim.metrics().counter("net.delivered"), 0);
        driver.run_until(&mut sim, SimTime::from_millis(200));
        sim.inject(a, b, Ping);
        sim.run_until(SimTime::from_millis(250));
        assert!(sim.metrics().counter("net.delivered") >= 1);
        assert!(driver.done());
    }

    #[test]
    fn degrade_window_drops_then_clears() {
        let (mut sim, a, b) = sim_pair();
        let plan = FaultPlan::new().degrade_at(
            SimTime::from_millis(10),
            FaultTarget::Node(b),
            1.0,
            0.0,
            SimDuration::ZERO,
            SimDuration::from_millis(100),
        );
        let mut driver = driver_for(&plan, vec![a, b]);
        driver.run_until(&mut sim, SimTime::from_millis(20));
        sim.inject(a, b, Ping);
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.metrics().counter("net.delivered"), 0);
        assert_eq!(sim.metrics().counter("net.dropped"), 1);
        driver.run_until(&mut sim, SimTime::from_millis(200));
        sim.inject(a, b, Ping);
        sim.run_until(SimTime::from_millis(300));
        assert!(sim.metrics().counter("net.delivered") >= 1);
    }

    #[test]
    fn unresolved_targets_are_skipped_not_fatal() {
        let (mut sim, a, b) = sim_pair();
        let plan =
            FaultPlan::new().crash_at(SimTime::from_millis(10), FaultTarget::CurrentLeader, None);
        let mut driver = driver_for(&plan, vec![a, b]);
        driver.run_until(&mut sim, SimTime::from_millis(100));
        assert!(sim.is_up(a) && sim.is_up(b));
        assert!(driver
            .applied()
            .iter()
            .any(|(_, line)| line.contains("skip")));
    }
}
