//! Virtual time: instants and durations with microsecond granularity.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulation's virtual clock, in microseconds since the
/// start of the run.
///
/// `SimTime` is totally ordered and cheap to copy. Arithmetic with
/// [`SimDuration`] saturates rather than wrapping, so a runaway timeout can
/// never travel back in time.
///
/// ```
/// use simnet::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from microseconds since the start of the run.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from milliseconds since the start of the run.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from seconds since the start of the run.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the start of the run.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the start of the run (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the start of the run, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, or [`SimDuration::ZERO`] if
    /// `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            return write!(f, "t=∞");
        }
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

/// A span of virtual time, in microseconds.
///
/// ```
/// use simnet::SimDuration;
/// assert_eq!(SimDuration::from_millis(2) * 3, SimDuration::from_micros(6_000));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// The duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_millis(3);
        assert_eq!(t.as_micros(), 3_000);
        assert_eq!((t + SimDuration::from_micros(7)).as_micros(), 3_007);
        assert_eq!(t - SimTime::from_millis(1), SimDuration::from_millis(2));
    }

    #[test]
    fn subtraction_saturates_instead_of_underflowing() {
        let early = SimTime::from_micros(5);
        let late = SimTime::from_micros(9);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn addition_saturates_at_the_horizon() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 4, SimDuration::from_millis(40));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d - SimDuration::from_millis(12), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_a_readable_unit() {
        assert_eq!(SimDuration::from_micros(250).to_string(), "250us");
        assert_eq!(SimDuration::from_micros(2_500).to_string(), "2.500ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
        assert_eq!(SimTime::from_secs(2).to_string(), "t=2.000000s");
    }

    #[test]
    fn ordering_matches_the_clock() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimTime::ZERO < SimTime::MAX);
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }
}
