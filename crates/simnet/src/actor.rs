//! The actor abstraction: protocol nodes and the context through which they
//! interact with the simulated world.

use std::fmt;

use crate::metrics::Metrics;
use crate::observe::{DomainEvent, EventBus, SimEvent};
use crate::rng::SimRng;
use crate::sim::NodeId;
use crate::storage::{ScopedStore, StableStore};
use crate::time::{SimDuration, SimTime};

/// A message exchanged between actors.
///
/// The `label` feeds the per-message-type counters used by the message-cost
/// experiments; `size_hint` (application payload bytes) feeds the byte
/// counters. Both have sensible defaults so toy protocols can ignore them.
pub trait Message: Clone + fmt::Debug + 'static {
    /// A short, static name for this message kind (e.g. `"paxos.accept"`).
    fn label(&self) -> &'static str {
        "msg"
    }

    /// Approximate wire size in bytes, used only for metrics.
    fn size_hint(&self) -> usize {
        0
    }
}

/// Identifies a pending timer so it can be cancelled.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub(crate) u64);

/// A fired timer, carrying the protocol-chosen `kind` discriminant.
#[derive(Copy, Clone, Debug)]
pub struct Timer {
    /// The id returned by [`Context::set_timer`].
    pub id: TimerId,
    /// The protocol-defined discriminant passed to [`Context::set_timer`].
    pub kind: u32,
}

/// A simulated process.
///
/// Actors are purely reactive: the simulator invokes the callbacks below, and
/// the actor responds by emitting messages and timers through the
/// [`Context`]. Actors must not share state with each other except through
/// messages — that is what keeps runs deterministic.
pub trait Actor {
    /// The message type this world exchanges.
    type Msg: Message;

    /// Invoked once when the node is added to the simulation, and again on
    /// every restart after a crash.
    fn on_start(&mut self, _ctx: &mut Context<'_, Self::Msg>) {}

    /// Invoked when a message is delivered to this node.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Invoked when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, timer: Timer);
}

/// Effects buffered during a callback, applied by the simulator afterwards.
pub(crate) enum Emit<M> {
    Send { to: NodeId, msg: M },
    SetTimer { id: TimerId, at: SimTime, kind: u32 },
    CancelTimer(TimerId),
}

/// The actor's window onto the simulation during a callback.
///
/// All interaction with the world — sending, timers, stable storage, metrics,
/// randomness — goes through the context, which keeps the simulation
/// deterministic and lets the harness intercept everything.
pub struct Context<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) now: SimTime,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) out: &'a mut Vec<Emit<M>>,
    pub(crate) storage: &'a mut StableStore,
    /// Namespace prepended to every storage key (see
    /// [`Context::storage`]). Empty outside multi-group worlds.
    pub(crate) key_prefix: &'a str,
    pub(crate) metrics: &'a mut Metrics,
    pub(crate) next_timer_id: &'a mut u64,
    pub(crate) trace: &'a mut crate::trace::Trace,
    pub(crate) bus: &'a mut EventBus,
}

impl<'a, M: Message> Context<'a, M> {
    /// The id of the node running this callback.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to `to` through the simulated network. Delivery time,
    /// loss and duplication are governed by the network model; sending to a
    /// crashed node silently drops the message (as a real network would).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.out.push(Emit::Send { to, msg });
    }

    /// Sends `msg` to every node in `to`, skipping this node itself. The
    /// last recipient takes ownership of `msg`, so an `n`-peer fan-out costs
    /// `n - 1` clones (and for `Arc`-backed payloads a clone is a refcount
    /// bump).
    pub fn broadcast(&mut self, to: &[NodeId], msg: M) {
        let n = to.iter().filter(|&&p| p != self.node).count();
        let mut msg = Some(msg);
        let mut sent = 0;
        for &peer in to {
            if peer == self.node {
                continue;
            }
            sent += 1;
            let m = if sent == n {
                msg.take().expect("one message per fan-out")
            } else {
                msg.as_ref().expect("still owned").clone()
            };
            self.send(peer, m);
        }
    }

    /// Schedules [`Actor::on_timer`] to run after `delay` with the given
    /// `kind` discriminant. Returns an id usable with
    /// [`Context::cancel_timer`]. Timers are implicitly cancelled when the
    /// node crashes.
    pub fn set_timer(&mut self, delay: SimDuration, kind: u32) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.out.push(Emit::SetTimer {
            id,
            at: self.now + delay,
            kind,
        });
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired or unknown timer
    /// is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.out.push(Emit::CancelTimer(id));
    }

    /// The node's deterministic random source.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// The node's stable storage, which survives crashes and restarts.
    ///
    /// The returned view is scoped: under a multi-group multiplexer (see
    /// [`crate::shard`]) each group's keys are transparently namespaced so
    /// co-hosted groups cannot collide. Outside sharded worlds the scope is
    /// empty and the view is a passthrough.
    pub fn storage(&mut self) -> ScopedStore<'_> {
        ScopedStore::new(self.storage, self.key_prefix)
    }

    /// The global metrics sink.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// Records a line in the bounded simulation trace (no-op unless tracing
    /// is enabled on the [`crate::Sim`]).
    pub fn trace(&mut self, line: impl FnOnce() -> String) {
        let node = self.node;
        let now = self.now;
        self.trace.record(now, node, line);
    }

    /// Emits a typed protocol event into the simulation's event stream.
    ///
    /// With no observer installed (the default) this costs one branch; see
    /// [`crate::observe`].
    pub fn emit_event(&mut self, event: DomainEvent) {
        let node = self.node;
        self.bus
            .emit_with(self.now, || SimEvent::Domain { node, event });
    }

    /// True when at least one event observer is installed on the
    /// simulation. Use to skip *preparing* data for [`Context::emit_event`]
    /// when the preparation itself is costly; plain emissions do not need
    /// the check.
    pub fn observed(&self) -> bool {
        self.bus.is_active()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct M;
    impl Message for M {}

    #[test]
    fn default_message_label_and_size() {
        assert_eq!(M.label(), "msg");
        assert_eq!(M.size_hint(), 0);
    }

    #[test]
    fn timer_ids_are_distinct() {
        assert_ne!(TimerId(1), TimerId(2));
        assert!(TimerId(1) < TimerId(2));
    }
}
