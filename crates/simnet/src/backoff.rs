//! Deterministic client retry backoff.
//!
//! The session clients (RSMR, static SMR, Raft) all follow the same
//! retransmit discipline: one request in flight, resend to a rotated
//! target when no reply arrives in time. A fixed retry interval keeps the
//! whole client population hammering a partitioned or recovering cluster
//! in lockstep; [`RetryBackoff`] replaces it with an exponential delay
//! (capped at `base << max_shift`) plus a *hash-based* jitter — the jitter
//! is a pure function of a caller-supplied salt, so it spreads clients
//! without consuming any simulation RNG stream, keeping runs replayable.
//!
//! After a fixed number of consecutive failures the backoff
//! reports *exhaustion* exactly once (callers surface it as the
//! `client.backoff_exhausted` metric) but keeps allowing retries at the
//! ceiling delay — a stuck request should be visible, not abandoned, since
//! the fault windows in chaos runs eventually heal.

use crate::time::SimDuration;

/// Exponential retry state for a single in-flight request.
#[derive(Clone, Debug)]
pub struct RetryBackoff {
    base: SimDuration,
    max_shift: u32,
    max_attempts: u32,
    attempts: u32,
    exhausted_reported: bool,
}

impl RetryBackoff {
    /// A backoff starting at `base`, doubling per attempt up to
    /// `base * 8`, reporting exhaustion after 8 attempts.
    pub fn new(base: SimDuration) -> Self {
        RetryBackoff {
            base,
            max_shift: 3,
            max_attempts: 8,
            attempts: 0,
            exhausted_reported: false,
        }
    }

    /// The base (first-attempt) delay.
    pub fn base(&self) -> SimDuration {
        self.base
    }

    /// Consecutive failed attempts since the last [`reset`](Self::reset).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// The delay to wait before the next retry: `base << min(attempts,
    /// max_shift)` plus a deterministic jitter of up to a quarter of the
    /// base interval, derived from `salt` (callers mix in their node id
    /// and request sequence number).
    pub fn current_delay(&self, salt: u64) -> SimDuration {
        let shifted = self.base * (1u64 << self.attempts.min(self.max_shift));
        let span = (self.base.as_micros() / 4).max(1);
        let jitter = mix64(salt ^ ((self.attempts as u64) << 56)) % span;
        shifted + SimDuration::from_micros(jitter)
    }

    /// Records a retry. Returns `true` exactly once, when the attempt
    /// count first reaches the exhaustion threshold.
    pub fn record_attempt(&mut self) -> bool {
        self.attempts = self.attempts.saturating_add(1);
        if self.attempts >= self.max_attempts && !self.exhausted_reported {
            self.exhausted_reported = true;
            return true;
        }
        false
    }

    /// Clears the attempt count (a reply or redirect arrived).
    pub fn reset(&mut self) {
        self.attempts = 0;
        self.exhausted_reported = false;
    }
}

/// A fixed 64-bit finalizer (splitmix64's): good avalanche, no state.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_doubles_then_plateaus() {
        let mut b = RetryBackoff::new(SimDuration::from_millis(300));
        let d0 = b.current_delay(7);
        b.record_attempt();
        let d1 = b.current_delay(7);
        b.record_attempt();
        let d2 = b.current_delay(7);
        b.record_attempt();
        let d3 = b.current_delay(7);
        b.record_attempt();
        let d4 = b.current_delay(7);
        assert!(d0 >= SimDuration::from_millis(300) && d0 < SimDuration::from_millis(375));
        assert!(d1 >= SimDuration::from_millis(600) && d1 < SimDuration::from_millis(675));
        assert!(d2 >= SimDuration::from_millis(1200));
        assert!(d3 >= SimDuration::from_millis(2400));
        // Ceiling: the shift stops at 3 even as attempts keep growing.
        assert!(d4 < SimDuration::from_millis(2475));
    }

    #[test]
    fn exhaustion_reports_exactly_once_and_resets() {
        let mut b = RetryBackoff::new(SimDuration::from_millis(300));
        let mut reports = 0;
        for _ in 0..20 {
            if b.record_attempt() {
                reports += 1;
            }
        }
        assert_eq!(reports, 1);
        b.reset();
        assert_eq!(b.attempts(), 0);
        let mut again = 0;
        for _ in 0..20 {
            if b.record_attempt() {
                again += 1;
            }
        }
        assert_eq!(again, 1);
    }

    #[test]
    fn jitter_is_deterministic_and_salt_dependent() {
        let b = RetryBackoff::new(SimDuration::from_millis(300));
        assert_eq!(b.current_delay(1), b.current_delay(1));
        // Different salts usually land on different delays (spread).
        let distinct: std::collections::BTreeSet<_> =
            (0..16u64).map(|s| b.current_delay(s).as_micros()).collect();
        assert!(distinct.len() > 8);
    }
}
