//! Ready-made world actors for the baseline systems (mirrors
//! `rsmr_core::harness::World`).

use rsmr_core::client::{AdminActor, OpenLoopClient, RsmrClient};
use rsmr_core::messages::RsmrMsg;
use rsmr_core::state_machine::StateMachine;
use simnet::{Actor, Context, NodeId, Timer};

use crate::raft::{RaftAdmin, RaftClient, RaftMsg, RaftNode};
use crate::stw::StwNode;

/// One node of a stop-the-world world. STW speaks the composed machine's
/// wire language, so the clients and admin are `rsmr-core`'s own.
///
/// One `StwWorld` per node, stored once in the sim's slot table, so the
/// replica/client size imbalance is harmless.
#[allow(clippy::large_enum_variant)]
pub enum StwWorld<S: StateMachine> {
    /// A replica.
    Server(StwNode<S>),
    /// A closed-loop client.
    Client(RsmrClient<S>),
    /// A paced client.
    Paced(OpenLoopClient<S>),
    /// The admin.
    Admin(AdminActor<S>),
}

impl<S: StateMachine> StwWorld<S> {
    /// The wrapped server, if this node is one.
    pub fn as_server(&self) -> Option<&StwNode<S>> {
        match self {
            StwWorld::Server(s) => Some(s),
            _ => None,
        }
    }

    /// The wrapped admin, if this node is one.
    pub fn as_admin(&self) -> Option<&AdminActor<S>> {
        match self {
            StwWorld::Admin(a) => Some(a),
            _ => None,
        }
    }

    /// Requests completed, for either client flavour.
    pub fn completed(&self) -> u64 {
        match self {
            StwWorld::Client(c) => c.completed(),
            StwWorld::Paced(c) => c.completed(),
            _ => 0,
        }
    }
}

impl<S: StateMachine> Actor for StwWorld<S> {
    type Msg = RsmrMsg<S::Op, S::Output>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        match self {
            StwWorld::Server(a) => a.on_start(ctx),
            StwWorld::Client(a) => a.on_start(ctx),
            StwWorld::Paced(a) => a.on_start(ctx),
            StwWorld::Admin(a) => a.on_start(ctx),
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
        match self {
            StwWorld::Server(a) => a.on_message(ctx, from, msg),
            StwWorld::Client(a) => a.on_message(ctx, from, msg),
            StwWorld::Paced(a) => a.on_message(ctx, from, msg),
            StwWorld::Admin(a) => a.on_message(ctx, from, msg),
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, timer: Timer) {
        match self {
            StwWorld::Server(a) => a.on_timer(ctx, timer),
            StwWorld::Client(a) => a.on_timer(ctx, timer),
            StwWorld::Paced(a) => a.on_timer(ctx, timer),
            StwWorld::Admin(a) => a.on_timer(ctx, timer),
        }
    }
}

/// One node of a Raft world. Unboxed for the same reason as
/// [`StwWorld`].
#[allow(clippy::large_enum_variant)]
pub enum RaftWorld<S: StateMachine> {
    /// A replica.
    Server(RaftNode<S>),
    /// A closed-loop client.
    Client(RaftClient<S>),
    /// The membership admin.
    Admin(RaftAdmin<S>),
}

impl<S: StateMachine> RaftWorld<S> {
    /// The wrapped server, if this node is one.
    pub fn as_server(&self) -> Option<&RaftNode<S>> {
        match self {
            RaftWorld::Server(s) => Some(s),
            _ => None,
        }
    }

    /// The wrapped admin, if this node is one.
    pub fn as_admin(&self) -> Option<&RaftAdmin<S>> {
        match self {
            RaftWorld::Admin(a) => Some(a),
            _ => None,
        }
    }

    /// The wrapped client, if this node is one.
    pub fn as_client(&self) -> Option<&RaftClient<S>> {
        match self {
            RaftWorld::Client(c) => Some(c),
            _ => None,
        }
    }

    /// Requests completed (clients only).
    pub fn completed(&self) -> u64 {
        match self {
            RaftWorld::Client(c) => c.completed(),
            _ => 0,
        }
    }
}

impl<S: StateMachine> Actor for RaftWorld<S> {
    type Msg = RaftMsg<S::Op, S::Output>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        match self {
            RaftWorld::Server(a) => a.on_start(ctx),
            RaftWorld::Client(a) => a.on_start(ctx),
            RaftWorld::Admin(a) => a.on_start(ctx),
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
        match self {
            RaftWorld::Server(a) => a.on_message(ctx, from, msg),
            RaftWorld::Client(a) => a.on_message(ctx, from, msg),
            RaftWorld::Admin(a) => a.on_message(ctx, from, msg),
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, timer: Timer) {
        match self {
            RaftWorld::Server(a) => a.on_timer(ctx, timer),
            RaftWorld::Client(a) => a.on_timer(ctx, timer),
            RaftWorld::Admin(a) => a.on_timer(ctx, timer),
        }
    }
}
