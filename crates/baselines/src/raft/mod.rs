//! `raft-lite`: a Raft-style natively reconfigurable SMR.
//!
//! The comparison system representing the design that dominates
//! open-source practice: reconfiguration is part of the replication
//! protocol (configuration entries in the log, single-server changes,
//! snapshot-based catch-up) rather than a composition of static instances.

mod actor;
mod core;
mod msg;

pub use actor::{RaftAdmin, RaftClient, RaftNode};
pub use core::{RaftCore, RaftEffects, RaftPropose, RaftRole, RaftTunables};
pub use msg::{Index, RaftMsg, RaftRpc, Term};
