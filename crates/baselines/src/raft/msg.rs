//! Wire messages of the Raft baseline.

use std::sync::Arc;

use rsmr_core::command::Cmd;
use simnet::{Message, NodeId};

/// A term number.
pub type Term = u64;
/// A 1-based log index; 0 means "nothing".
pub type Index = u64;

/// Replica ↔ replica RPCs (the Raft protocol proper).
#[derive(Clone, Debug, PartialEq)]
pub enum RaftRpc<O> {
    /// Candidate → voter.
    RequestVote {
        /// Candidate's term.
        term: Term,
        /// Index of the candidate's last log entry.
        last_index: Index,
        /// Term of the candidate's last log entry.
        last_term: Term,
    },
    /// Voter → candidate.
    VoteReply {
        /// Voter's current term.
        term: Term,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Leader → follower: replicate entries / heartbeat.
    Append {
        /// Leader's term.
        term: Term,
        /// Index immediately preceding `entries`.
        prev_index: Index,
        /// Term of the entry at `prev_index`.
        prev_term: Term,
        /// Entries to append (empty for a pure heartbeat).
        entries: Vec<(Term, Arc<Cmd<O>>)>,
        /// Leader's commit index.
        commit: Index,
    },
    /// Follower → leader.
    AppendReply {
        /// Follower's current term.
        term: Term,
        /// Whether the consistency check passed and entries were stored.
        success: bool,
        /// On success, the follower's new last replicated index.
        match_index: Index,
        /// On failure, where the leader should try next.
        hint_index: Index,
    },
    /// Leader → lagging follower: replace your state wholesale.
    InstallSnapshot {
        /// Leader's term.
        term: Term,
        /// Index covered by the snapshot.
        last_index: Index,
        /// Term at `last_index`.
        last_term: Term,
        /// Members effective at `last_index`.
        members: Vec<NodeId>,
        /// Configuration changes (`Reconfigure` entries) covered by the
        /// snapshot — lets the receiver label later applies with the right
        /// era even though the entries themselves are compacted away.
        eras: u64,
        /// Opaque application payload (state machine + sessions).
        data: Vec<u8>,
    },
    /// Follower → leader.
    SnapshotReply {
        /// Follower's current term.
        term: Term,
        /// The snapshot index now covered.
        last_index: Index,
    },
}

/// Messages of a Raft-replicated world (protocol + client/admin traffic).
#[derive(Clone, Debug)]
pub enum RaftMsg<O, R> {
    /// Protocol RPCs.
    Rpc(RaftRpc<O>),
    /// Client → replica.
    Request {
        /// Client session sequence number.
        seq: u64,
        /// The operation.
        op: O,
    },
    /// Replica → client.
    Reply {
        /// Echo of the sequence number.
        seq: u64,
        /// Operation output.
        output: R,
        /// Current cluster members.
        members: Vec<NodeId>,
    },
    /// Replica → client: retry at `leader`.
    Redirect {
        /// Echo of the sequence number.
        seq: u64,
        /// Best-known leader.
        leader: Option<NodeId>,
        /// Current cluster members.
        members: Vec<NodeId>,
    },
    /// Admin → replica: change membership to exactly this set. Must differ
    /// from the current set by at most one server (Raft single-server
    /// changes); the admin decomposes larger changes.
    Reconfigure {
        /// The requested member set.
        members: Vec<NodeId>,
    },
    /// Replica → admin.
    ReconfigureReply {
        /// Whether the change was applied (committed).
        ok: bool,
        /// On refusal, where to retry.
        leader: Option<NodeId>,
        /// The cluster's current member set after the operation.
        members: Vec<NodeId>,
    },
}

impl<O, R> Message for RaftMsg<O, R>
where
    O: Clone + std::fmt::Debug + 'static,
    R: Clone + std::fmt::Debug + 'static,
{
    fn label(&self) -> &'static str {
        match self {
            RaftMsg::Rpc(RaftRpc::RequestVote { .. }) => "raft.request_vote",
            RaftMsg::Rpc(RaftRpc::VoteReply { .. }) => "raft.vote_reply",
            RaftMsg::Rpc(RaftRpc::Append { .. }) => "raft.append",
            RaftMsg::Rpc(RaftRpc::AppendReply { .. }) => "raft.append_reply",
            RaftMsg::Rpc(RaftRpc::InstallSnapshot { .. }) => "raft.install_snapshot",
            RaftMsg::Rpc(RaftRpc::SnapshotReply { .. }) => "raft.snapshot_reply",
            RaftMsg::Request { .. } => "raft.request",
            RaftMsg::Reply { .. } => "raft.reply",
            RaftMsg::Redirect { .. } => "raft.redirect",
            RaftMsg::Reconfigure { .. } => "raft.reconfigure",
            RaftMsg::ReconfigureReply { .. } => "raft.reconfigure_reply",
        }
    }

    fn size_hint(&self) -> usize {
        match self {
            RaftMsg::Rpc(RaftRpc::Append { entries, .. }) => 40 + entries.len() * 48,
            RaftMsg::Rpc(RaftRpc::InstallSnapshot { data, members, .. }) => {
                40 + members.len() * 8 + data.len()
            }
            RaftMsg::Rpc(_) => 32,
            RaftMsg::Request { .. } => 48,
            RaftMsg::Reply { members, .. } => 40 + members.len() * 8,
            RaftMsg::Redirect { members, .. } => 32 + members.len() * 8,
            RaftMsg::Reconfigure { members } => 16 + members.len() * 8,
            RaftMsg::ReconfigureReply { members, .. } => 24 + members.len() * 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let msgs: Vec<RaftMsg<u64, u64>> = vec![
            RaftMsg::Rpc(RaftRpc::RequestVote {
                term: 1,
                last_index: 0,
                last_term: 0,
            }),
            RaftMsg::Rpc(RaftRpc::VoteReply {
                term: 1,
                granted: true,
            }),
            RaftMsg::Rpc(RaftRpc::Append {
                term: 1,
                prev_index: 0,
                prev_term: 0,
                entries: vec![],
                commit: 0,
            }),
            RaftMsg::Rpc(RaftRpc::AppendReply {
                term: 1,
                success: true,
                match_index: 0,
                hint_index: 0,
            }),
            RaftMsg::Rpc(RaftRpc::InstallSnapshot {
                term: 1,
                last_index: 0,
                last_term: 0,
                members: vec![],
                eras: 0,
                data: vec![],
            }),
            RaftMsg::Rpc(RaftRpc::SnapshotReply {
                term: 1,
                last_index: 0,
            }),
            RaftMsg::Request { seq: 0, op: 0 },
            RaftMsg::Reply {
                seq: 0,
                output: 0,
                members: vec![],
            },
            RaftMsg::Redirect {
                seq: 0,
                leader: None,
                members: vec![],
            },
            RaftMsg::Reconfigure { members: vec![] },
            RaftMsg::ReconfigureReply {
                ok: true,
                leader: None,
                members: vec![],
            },
        ];
        let mut labels: Vec<_> = msgs.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), msgs.len());
    }
}
