//! `simnet` actors for the Raft baseline: replica, client and admin.

use std::collections::BTreeMap;

use consensus::StaticConfig;
use rsmr_core::command::{BatchEntry, Cmd};
use rsmr_core::session::{SessionDecision, SessionTable};
use rsmr_core::state_machine::StateMachine;
use simnet::wire;
use simnet::{Actor, Context, DomainEvent, NodeId, RetryBackoff, SimDuration, SimTime, Timer};

use super::core::{RaftCore, RaftEffects, RaftPropose, RaftTunables};
use super::msg::{Index, RaftMsg};

/// How often the replica pumps the core's timers.
const TICK: SimDuration = SimDuration::from_millis(5);

/// Namespace prefix for the core's hard-state keys in the stable store.
const PERSIST_PREFIX: &str = "raft/";

/// A Raft replica hosting a [`StateMachine`].
pub struct RaftNode<S: StateMachine> {
    core: RaftCore<S::Op>,
    sm: S,
    sessions: SessionTable<S::Output>,
    waiting: BTreeMap<(NodeId, u64), ()>,
    /// An admin's pending config change: `(admin, config entry index)`.
    pending_admin: Option<(NodeId, Index)>,
    compact_threshold: u64,
    applied_count: u64,
    /// Configuration era: how many `Reconfigure` entries this replica has
    /// applied. Raft has no epochs; the era stands in for one in the typed
    /// event stream so cross-system span derivations line up.
    config_era: u64,
    /// Leader-side command batching threshold (`tun.cmd_batch`).
    cmd_batch: usize,
    /// Commands accumulated toward the next `Cmd::Batch` entry.
    batch_buf: Vec<(NodeId, u64, S::Op)>,
}

impl<S: StateMachine + Default> RaftNode<S> {
    /// Creates a member of the initial cluster.
    pub fn new(me: NodeId, initial: StaticConfig, tun: RaftTunables) -> Self {
        let compact_threshold = tun.compact_threshold;
        let cmd_batch = tun.cmd_batch;
        RaftNode {
            core: RaftCore::new(me, initial, SimTime::ZERO, tun),
            sm: S::default(),
            sessions: SessionTable::new(),
            waiting: BTreeMap::new(),
            pending_admin: None,
            compact_threshold,
            applied_count: 0,
            config_era: 0,
            cmd_batch,
            batch_buf: Vec::new(),
        }
    }

    /// Creates a blank joining node, brought up by the leader via snapshot
    /// and log replication after it is added to the configuration.
    pub fn joining(me: NodeId, tun: RaftTunables) -> Self {
        let compact_threshold = tun.compact_threshold;
        let cmd_batch = tun.cmd_batch;
        RaftNode {
            core: RaftCore::blank(me, tun),
            sm: S::default(),
            sessions: SessionTable::new(),
            waiting: BTreeMap::new(),
            pending_admin: None,
            compact_threshold,
            applied_count: 0,
            config_era: 0,
            cmd_batch,
            batch_buf: Vec::new(),
        }
    }

    /// Rebuilds a replica from its stable store after a crash: hard state
    /// (term/vote), snapshot and log come back from storage; the app state
    /// and session table are restored from the snapshot payload, and the
    /// suffix above the snapshot re-applies as the new leader's commit
    /// index reaches this node.
    pub fn recover(me: NodeId, tun: RaftTunables, store: &simnet::StableStore) -> Self {
        let compact_threshold = tun.compact_threshold;
        let cmd_batch = tun.cmd_batch;
        let items: Vec<(String, Vec<u8>)> = store
            .keys_with_prefix(PERSIST_PREFIX)
            .map(|k| {
                (
                    k[PERSIST_PREFIX.len()..].to_owned(),
                    store.get(k).expect("key just listed").to_vec(),
                )
            })
            .collect();
        let core = RaftCore::recover(me, SimTime::ZERO, tun, items);
        // Resume era labelling from the snapshot: `Reconfigure` entries
        // compacted into it are no longer in the log to be re-counted.
        let config_era = core.snap_eras();
        let mut node = RaftNode {
            core,
            sm: S::default(),
            sessions: SessionTable::new(),
            waiting: BTreeMap::new(),
            pending_admin: None,
            compact_threshold,
            applied_count: 0,
            config_era,
            cmd_batch,
            batch_buf: Vec::new(),
        };
        let payload = node.core.snapshot_data().to_vec();
        if !payload.is_empty() {
            node.restore_payload(&payload);
        }
        node
    }
}

impl<S: StateMachine> RaftNode<S> {
    /// Creates a member of the initial cluster with an explicit initial
    /// application state. The state is carried as a genesis snapshot so
    /// that later joiners receive it through `InstallSnapshot`.
    pub fn with_state(me: NodeId, initial: StaticConfig, tun: RaftTunables, sm: S) -> Self {
        let compact_threshold = tun.compact_threshold;
        let cmd_batch = tun.cmd_batch;
        let sessions: SessionTable<S::Output> = SessionTable::new();
        let payload = wire::to_bytes(&(sm.snapshot(), sessions.clone()));
        RaftNode {
            core: RaftCore::with_genesis_snapshot(me, initial, payload, SimTime::ZERO, tun),
            sm,
            sessions,
            waiting: BTreeMap::new(),
            pending_admin: None,
            compact_threshold,
            applied_count: 0,
            config_era: 0,
            cmd_batch,
            batch_buf: Vec::new(),
        }
    }

    /// The protocol core (read-only).
    pub fn core(&self) -> &RaftCore<S::Op> {
        &self.core
    }

    /// Read access to the application state.
    pub fn state_machine(&self) -> &S {
        &self.sm
    }

    /// Commands applied by this replica.
    pub fn applied_count(&self) -> u64 {
        self.applied_count
    }

    fn snapshot_payload(&self) -> Vec<u8> {
        wire::to_bytes(&(self.sm.snapshot(), self.sessions.clone()))
    }

    fn restore_payload(&mut self, data: &[u8]) -> bool {
        let Some((app, sessions)) = wire::from_bytes::<(Vec<u8>, SessionTable<S::Output>)>(data)
        else {
            return false;
        };
        let Some(sm) = S::restore(&app) else {
            return false;
        };
        self.sm = sm;
        self.sessions = sessions;
        true
    }

    fn process_effects(
        &mut self,
        ctx: &mut Context<'_, RaftMsg<S::Op, S::Output>>,
        fx: RaftEffects<S::Op>,
    ) {
        // Write-ahead: in the simulator, outbound messages emitted below are
        // not delivered until this callback returns, so persisting here
        // (before or after `send`) is equivalent to persisting first.
        for (key, value) in fx.persist {
            ctx.storage().put(&format!("{PERSIST_PREFIX}{key}"), value);
        }
        for key in fx.unpersist {
            ctx.storage().remove(&format!("{PERSIST_PREFIX}{key}"));
        }
        for (to, rpc) in fx.outbound {
            ctx.send(to, RaftMsg::Rpc(rpc));
        }
        if fx.became_leader {
            ctx.metrics().incr("raft.leader_elections", 1);
        }
        if let Some(data) = fx.installed_snapshot {
            if self.restore_payload(&data) {
                // The snapshot may absorb `Reconfigure` entries this node
                // never applied; jump the era counter to match.
                self.config_era = self.core.snap_eras();
                ctx.metrics().incr("raft.snapshots_installed", 1);
            } else {
                ctx.metrics().incr("raft.snapshot_decode_failures", 1);
            }
        }
        for (index, cmd) in fx.committed {
            let era = self.config_era;
            ctx.emit_event(DomainEvent::CmdCommitted {
                epoch: era,
                slot: index,
            });
            match &*cmd {
                Cmd::Noop => {}
                Cmd::App { client, seq, op } => self.apply_app(ctx, index, *client, *seq, op),
                Cmd::Batch { entries } => {
                    // Raft applies the whole log, so an intra-batch
                    // `Reconfigure` needs no truncation: apps before and
                    // after it apply in order, and the config entry bumps
                    // the era exactly like a top-level one.
                    for entry in entries {
                        match entry {
                            BatchEntry::App { client, seq, op } => {
                                self.apply_app(ctx, index, *client, *seq, op)
                            }
                            BatchEntry::Reconfigure { .. } => self.commit_config(ctx, index),
                        }
                    }
                }
                Cmd::Reconfigure { .. } => self.commit_config(ctx, index),
            }
        }
        // Compaction keeps the log bounded (and exercises InstallSnapshot
        // for joiners). A margin of recent entries is retained so healthy
        // followers that lag by a few in-flight entries are served from
        // the log rather than with a full snapshot.
        const COMPACT_MARGIN: u64 = 64;
        let upto = self.core.delivered_index().saturating_sub(COMPACT_MARGIN);
        if upto.saturating_sub(self.core.snapshot_index()) > self.compact_threshold {
            let payload = self.snapshot_payload();
            let cfx = self.core.compact(upto, payload);
            for (key, value) in cfx.persist {
                ctx.storage().put(&format!("{PERSIST_PREFIX}{key}"), value);
            }
            for key in cfx.unpersist {
                ctx.storage().remove(&format!("{PERSIST_PREFIX}{key}"));
            }
            ctx.metrics().incr("raft.compactions", 1);
        }
    }

    /// Appends the accumulated commands as one `Cmd::Batch` log entry.
    fn flush_cmd_batch(&mut self, ctx: &mut Context<'_, RaftMsg<S::Op, S::Output>>) {
        if self.batch_buf.is_empty() {
            return;
        }
        let buffered = std::mem::take(&mut self.batch_buf);
        let keys: Vec<(NodeId, u64)> = buffered.iter().map(|(c, s, _)| (*c, *s)).collect();
        let entries: Vec<BatchEntry<S::Op>> = buffered
            .into_iter()
            .map(|(client, seq, op)| BatchEntry::App { client, seq, op })
            .collect();
        let (fx, res) = self.core.propose(Cmd::Batch { entries }, ctx.now());
        match res {
            RaftPropose::Appended(_) => {
                ctx.metrics().incr("raft.batches_appended", 1);
                ctx.metrics().incr("raft.batched_cmds", keys.len() as u64);
                for key in keys {
                    self.waiting.insert(key, ());
                }
            }
            RaftPropose::NotLeader(_) | RaftPropose::BadReconfigure => {
                // Lost leadership between accumulation and flush: redirect
                // so the clients retry against the new leader.
                for (client, seq) in keys {
                    ctx.send(
                        client,
                        RaftMsg::Redirect {
                            seq,
                            leader: self.core.leader_hint(),
                            members: self.core.current_members(),
                        },
                    );
                }
            }
        }
        self.process_effects(ctx, fx);
    }

    /// A committed configuration entry (top-level or intra-batch): the era
    /// ends where the entry commits; the next one is live immediately (no
    /// transfer phase in Raft).
    fn commit_config(&mut self, ctx: &mut Context<'_, RaftMsg<S::Op, S::Output>>, index: Index) {
        let era = self.config_era;
        let now = ctx.now();
        ctx.metrics().incr("raft.config_commits", 1);
        ctx.metrics()
            .timeline_push("rsmr.epoch_finalized", now, index as f64);
        ctx.emit_event(DomainEvent::EpochSealed {
            epoch: era,
            seal_slot: index,
        });
        self.config_era += 1;
        ctx.emit_event(DomainEvent::Anchored {
            epoch: self.config_era,
        });
        // Resolve the admin waiting on this entry.
        if let Some((admin, at)) = self.pending_admin {
            if index >= at {
                self.pending_admin = None;
                ctx.send(
                    admin,
                    RaftMsg::ReconfigureReply {
                        ok: true,
                        leader: Some(self.core.id()),
                        members: self.core.current_members(),
                    },
                );
            }
        }
        // A leader removed by the committed config steps down.
        if self.core.is_leader() && !self.core.current_members().contains(&self.core.id()) {
            self.core.abdicate();
        }
    }

    fn apply_app(
        &mut self,
        ctx: &mut Context<'_, RaftMsg<S::Op, S::Output>>,
        index: Index,
        client: NodeId,
        seq: u64,
        op: &S::Op,
    ) {
        let output = match self.sessions.check(client, seq) {
            SessionDecision::Fresh => {
                let out = self.sm.apply(op);
                self.sessions.record(client, seq, out.clone());
                self.applied_count += 1;
                ctx.metrics().incr("raft.applied", 1);
                ctx.emit_event(DomainEvent::CmdApplied {
                    client,
                    seq,
                    epoch: self.config_era,
                    slot: index,
                });
                let now = ctx.now();
                ctx.metrics().timeline_push("rsmr.commits", now, 1.0);
                out
            }
            SessionDecision::Duplicate(out) => out,
            SessionDecision::Stale => {
                self.waiting.remove(&(client, seq));
                return;
            }
        };
        if self.waiting.remove(&(client, seq)).is_some() {
            ctx.send(
                client,
                RaftMsg::Reply {
                    seq,
                    output,
                    members: self.core.current_members(),
                },
            );
        }
    }
}

impl<S: StateMachine> Actor for RaftNode<S> {
    type Msg = RaftMsg<S::Op, S::Output>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        // Persist the genesis hard state so a crash before the first
        // protocol step still recovers the configuration and app image.
        if ctx
            .storage()
            .get(&format!("{PERSIST_PREFIX}snap"))
            .is_none()
        {
            for (key, value) in self.core.bootstrap_persist() {
                ctx.storage().put(&format!("{PERSIST_PREFIX}{key}"), value);
            }
        }
        ctx.set_timer(TICK, 0);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
        match msg {
            RaftMsg::Rpc(rpc) => {
                let fx = self.core.on_message(from, rpc, ctx.now());
                self.process_effects(ctx, fx);
            }
            RaftMsg::Request { seq, op } => {
                match self.sessions.check(from, seq) {
                    SessionDecision::Duplicate(output) => {
                        ctx.send(
                            from,
                            RaftMsg::Reply {
                                seq,
                                output,
                                members: self.core.current_members(),
                            },
                        );
                        return;
                    }
                    SessionDecision::Stale => return,
                    SessionDecision::Fresh => {}
                }
                // Leader-side batching: accumulate and append one
                // `Cmd::Batch` entry when the buffer fills (or at the next
                // tick), amortizing per-entry replication overhead.
                if self.cmd_batch > 0 && self.core.is_leader() {
                    self.batch_buf.push((from, seq, op));
                    if self.batch_buf.len() >= self.cmd_batch {
                        self.flush_cmd_batch(ctx);
                    }
                    return;
                }
                let (fx, res) = self.core.propose(
                    Cmd::App {
                        client: from,
                        seq,
                        op,
                    },
                    ctx.now(),
                );
                match res {
                    RaftPropose::Appended(_) => {
                        self.waiting.insert((from, seq), ());
                    }
                    RaftPropose::NotLeader(_) | RaftPropose::BadReconfigure => {
                        ctx.send(
                            from,
                            RaftMsg::Redirect {
                                seq,
                                leader: self.core.leader_hint(),
                                members: self.core.current_members(),
                            },
                        );
                    }
                }
                self.process_effects(ctx, fx);
            }
            RaftMsg::Reconfigure { members } => {
                let current = self.core.current_members();
                if members == current {
                    ctx.send(
                        from,
                        RaftMsg::ReconfigureReply {
                            ok: true,
                            leader: self.core.leader_hint(),
                            members: current,
                        },
                    );
                    return;
                }
                if !self.core.is_leader() {
                    ctx.send(
                        from,
                        RaftMsg::ReconfigureReply {
                            ok: false,
                            leader: self.core.leader_hint(),
                            members: current,
                        },
                    );
                    return;
                }
                let (fx, res) = self.core.propose(Cmd::Reconfigure { members }, ctx.now());
                match res {
                    RaftPropose::Appended(index) => {
                        self.pending_admin = Some((from, index));
                        let now = ctx.now();
                        ctx.metrics().incr("raft.reconfigs_accepted", 1);
                        ctx.metrics()
                            .timeline_push("rsmr.reconfig_proposed", now, index as f64);
                        ctx.emit_event(DomainEvent::ReconfigProposed {
                            epoch: self.config_era,
                        });
                    }
                    _ => {
                        ctx.send(
                            from,
                            RaftMsg::ReconfigureReply {
                                ok: false,
                                leader: self.core.leader_hint(),
                                members: self.core.current_members(),
                            },
                        );
                    }
                }
                self.process_effects(ctx, fx);
            }
            RaftMsg::Reply { .. } | RaftMsg::Redirect { .. } | RaftMsg::ReconfigureReply { .. } => {
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, _timer: Timer) {
        if !self.batch_buf.is_empty() {
            self.flush_cmd_batch(ctx);
        }
        let fx = self.core.tick(ctx.now());
        self.process_effects(ctx, fx);
        ctx.set_timer(TICK, 0);
    }
}

/// A closed-loop Raft client (mirrors `rsmr_core::RsmrClient`).
pub struct RaftClient<S: StateMachine> {
    servers: Vec<NodeId>,
    target: NodeId,
    gen: Box<dyn FnMut(u64) -> S::Op>,
    next_seq: u64,
    inflight: Option<(u64, S::Op, SimTime, SimTime)>,
    limit: Option<u64>,
    completed: u64,
    retransmit_after: SimDuration,
    backoff: RetryBackoff,
    record_history: bool,
    history: Vec<rsmr_core::client::HistoryEntry<S::Op, S::Output>>,
}

impl<S: StateMachine> RaftClient<S> {
    /// Creates a client issuing `gen` operations, at most `limit` of them.
    pub fn new(
        servers: Vec<NodeId>,
        gen: impl FnMut(u64) -> S::Op + 'static,
        limit: Option<u64>,
    ) -> Self {
        assert!(!servers.is_empty());
        let target = servers[0];
        RaftClient {
            servers,
            target,
            gen: Box::new(gen),
            next_seq: 0,
            inflight: None,
            limit,
            completed: 0,
            retransmit_after: SimDuration::from_millis(300),
            backoff: RetryBackoff::new(SimDuration::from_millis(300)),
            record_history: false,
            history: Vec::new(),
        }
    }

    /// Enables per-operation history recording (for linearizability
    /// checking), builder-style. Mirrors `RsmrClient::with_history`.
    pub fn with_history(mut self) -> Self {
        self.record_history = true;
        self
    }

    /// The recorded history of completed operations (empty unless
    /// [`RaftClient::with_history`] was used).
    pub fn history(&self) -> &[rsmr_core::client::HistoryEntry<S::Op, S::Output>] {
        &self.history
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    fn issue_next(&mut self, ctx: &mut Context<'_, RaftMsg<S::Op, S::Output>>) {
        if let Some(limit) = self.limit {
            if self.next_seq >= limit {
                return;
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.backoff.reset();
        let op = (self.gen)(seq);
        self.inflight = Some((seq, op.clone(), ctx.now(), ctx.now()));
        // Fresh submission only; retransmits and redirects re-send without
        // reopening the command's latency span.
        ctx.emit_event(DomainEvent::CmdSubmitted {
            client: ctx.node_id(),
            seq,
        });
        ctx.send(self.target, RaftMsg::Request { seq, op });
    }

    fn rotate(&mut self) {
        let idx = self
            .servers
            .iter()
            .position(|&s| s == self.target)
            .unwrap_or(0);
        self.target = self.servers[(idx + 1) % self.servers.len()];
    }

    fn adopt_members(&mut self, members: &[NodeId]) {
        if !members.is_empty() && self.servers != members {
            self.servers = members.to_vec();
            if !self.servers.contains(&self.target) {
                self.target = self.servers[0];
            }
        }
    }
}

impl<S: StateMachine> Actor for RaftClient<S> {
    type Msg = RaftMsg<S::Op, S::Output>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        self.issue_next(ctx);
        ctx.set_timer(self.retransmit_after, 0);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, _from: NodeId, msg: Self::Msg) {
        match msg {
            RaftMsg::Reply {
                seq,
                output,
                members,
            } => {
                self.adopt_members(&members);
                let Some((cur, op, _, first)) = self.inflight.clone() else {
                    return;
                };
                if seq != cur {
                    return;
                }
                let latency = ctx.now().since(first);
                ctx.metrics()
                    .observe("client.latency_us", latency.as_micros() as f64);
                let now = ctx.now();
                ctx.metrics().timeline_push("client.completes", now, 1.0);
                if self.record_history {
                    self.history.push((seq, op, output, first, now));
                }
                self.inflight = None;
                self.completed += 1;
                self.issue_next(ctx);
            }
            RaftMsg::Redirect {
                seq,
                leader,
                members,
            } => {
                self.adopt_members(&members);
                let Some((cur, op, _, first)) = self.inflight.clone() else {
                    return;
                };
                if seq != cur {
                    return;
                }
                match leader {
                    Some(l) if self.servers.contains(&l) && l != self.target => self.target = l,
                    _ => self.rotate(),
                }
                // Fresh routing information: restart the backoff.
                self.backoff.reset();
                self.inflight = Some((seq, op.clone(), ctx.now(), first));
                ctx.send(self.target, RaftMsg::Request { seq, op });
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, _timer: Timer) {
        if let Some((seq, op, sent, first)) = self.inflight.clone() {
            let salt = ctx.node_id().0 ^ seq.rotate_left(20);
            if ctx.now().since(sent) >= self.backoff.current_delay(salt) {
                if self.backoff.record_attempt() {
                    ctx.metrics().incr("client.backoff_exhausted", 1);
                }
                self.rotate();
                ctx.metrics().incr("client.retransmits", 1);
                self.inflight = Some((seq, op.clone(), ctx.now(), first));
                ctx.send(self.target, RaftMsg::Request { seq, op });
            }
        }
        ctx.set_timer(self.retransmit_after, 0);
    }
}

/// Drives scripted membership changes, decomposing an arbitrary target set
/// into Raft-legal single-server steps (additions first, then removals).
pub struct RaftAdmin<S: StateMachine> {
    servers: Vec<NodeId>,
    target: NodeId,
    script: Vec<(SimTime, Vec<NodeId>)>,
    step: usize,
    /// When the current script step started (for latency measurement).
    step_started: Option<SimTime>,
    /// Members as last reported by the cluster.
    known: Vec<NodeId>,
    inflight: bool,
    last_send: SimTime,
    retry: SimDuration,
    results: Vec<(SimTime, SimTime)>,
    _marker: std::marker::PhantomData<S>,
}

impl<S: StateMachine> RaftAdmin<S> {
    /// Creates an admin executing `script` against an initial member set.
    pub fn new(initial: Vec<NodeId>, script: Vec<(SimTime, Vec<NodeId>)>) -> Self {
        assert!(!initial.is_empty());
        let target = initial[0];
        RaftAdmin {
            servers: initial.clone(),
            target,
            script,
            step: 0,
            step_started: None,
            known: initial,
            inflight: false,
            last_send: SimTime::ZERO,
            retry: SimDuration::from_millis(100),
            results: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Completed script steps as `(started, finished)`.
    pub fn results(&self) -> &[(SimTime, SimTime)] {
        &self.results
    }

    /// True when the whole script has executed.
    pub fn is_done(&self) -> bool {
        self.step >= self.script.len()
    }

    /// The next single-server member set moving `known` toward `target`.
    fn next_single_step(known: &[NodeId], target: &[NodeId]) -> Option<Vec<NodeId>> {
        let cur: std::collections::BTreeSet<NodeId> = known.iter().copied().collect();
        let tgt: std::collections::BTreeSet<NodeId> = target.iter().copied().collect();
        if cur == tgt {
            return None;
        }
        // Additions first: keeps quorums as large as possible mid-change.
        if let Some(&add) = tgt.difference(&cur).next() {
            let mut next = cur.clone();
            next.insert(add);
            return Some(next.into_iter().collect());
        }
        let &remove = cur.difference(&tgt).next().expect("sets differ");
        let mut next = cur;
        next.remove(&remove);
        Some(next.into_iter().collect())
    }

    fn rotate(&mut self) {
        let idx = self
            .servers
            .iter()
            .position(|&s| s == self.target)
            .unwrap_or(0);
        self.target = self.servers[(idx + 1) % self.servers.len()];
    }

    fn pump(&mut self, ctx: &mut Context<'_, RaftMsg<S::Op, S::Output>>) {
        if self.inflight || self.is_done() {
            return;
        }
        let (at, target) = self.script[self.step].clone();
        if ctx.now() < at {
            return;
        }
        if self.step_started.is_none() {
            self.step_started = Some(ctx.now());
        }
        match Self::next_single_step(&self.known, &target) {
            None => {
                // Target reached: record and move on.
                let started = self.step_started.take().expect("step was started");
                let finished = ctx.now();
                self.results.push((started, finished));
                ctx.metrics().observe(
                    "admin.reconfig_latency_us",
                    finished.since(started).as_micros() as f64,
                );
                self.step += 1;
                self.pump(ctx);
            }
            Some(next_set) => {
                self.inflight = true;
                self.last_send = ctx.now();
                ctx.send(self.target, RaftMsg::Reconfigure { members: next_set });
            }
        }
    }
}

impl<S: StateMachine> Actor for RaftAdmin<S> {
    type Msg = RaftMsg<S::Op, S::Output>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        self.pump(ctx);
        ctx.set_timer(self.retry, 0);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, _from: NodeId, msg: Self::Msg) {
        if let RaftMsg::ReconfigureReply {
            ok,
            leader,
            members,
        } = msg
        {
            if !members.is_empty() {
                self.known = members.clone();
                self.servers = members;
                if !self.servers.contains(&self.target) {
                    self.target = self.servers[0];
                }
            }
            self.inflight = false;
            if !ok {
                match leader {
                    Some(l) if self.servers.contains(&l) => self.target = l,
                    _ => self.rotate(),
                }
            }
            self.pump(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, _timer: Timer) {
        if self.inflight && ctx.now().since(self.last_send) >= self.retry * 3 {
            // Lost request or crashed target: retry elsewhere.
            self.inflight = false;
            self.rotate();
        }
        self.pump(ctx);
        ctx.set_timer(self.retry, 0);
    }
}
