//! A sans-I/O Raft core with single-server membership changes.
//!
//! This is the "natively reconfigurable" comparator: instead of composing
//! static instances, reconfiguration is woven into the replication protocol
//! itself — configuration entries in the log, effective as soon as they are
//! appended, changed one server at a time (§4.4 of the Raft dissertation).
//! Log compaction and `InstallSnapshot` carry joining members.
//!
//! The core mirrors the structure of `consensus::MultiPaxos`: inputs are
//! RPCs and clock ticks, outputs are [`RaftEffects`].

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use consensus::StaticConfig;
use rsmr_core::command::Cmd;
use simnet::{NodeId, SimDuration, SimTime};

use super::msg::{Index, RaftRpc, Term};

/// Timing and sizing knobs.
#[derive(Clone, Debug)]
pub struct RaftTunables {
    /// Leader heartbeat interval.
    pub heartbeat_interval: SimDuration,
    /// Base election timeout.
    pub election_timeout: SimDuration,
    /// Maximum deterministic jitter added to the election timeout.
    pub election_jitter: SimDuration,
    /// Compact the log once this many applied entries accumulate.
    pub compact_threshold: u64,
    /// Maximum entries per `Append`.
    pub batch: usize,
}

impl Default for RaftTunables {
    fn default() -> Self {
        RaftTunables {
            heartbeat_interval: SimDuration::from_millis(20),
            election_timeout: SimDuration::from_millis(150),
            election_jitter: SimDuration::from_millis(150),
            compact_threshold: 1024,
            batch: 512,
        }
    }
}

/// The node's current role.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RaftRole {
    /// Passive replica.
    Follower,
    /// Campaigning for leadership.
    Candidate,
    /// Serializes commands.
    Leader,
}

/// What a [`RaftCore::propose`] did.
#[derive(Clone, PartialEq, Debug)]
pub enum RaftPropose {
    /// Appended at this index.
    Appended(Index),
    /// Not the leader; retry at the hint.
    NotLeader(Option<NodeId>),
    /// (Reconfigure only) refused: an uncommitted config change is pending
    /// or the request changes more than one server.
    BadReconfigure,
}

/// Effects of one core step.
#[derive(Debug)]
pub struct RaftEffects<O> {
    /// RPCs to send.
    pub outbound: Vec<(NodeId, RaftRpc<O>)>,
    /// Newly committed entries, in log order, delivered exactly once.
    pub committed: Vec<(Index, Arc<Cmd<O>>)>,
    /// A snapshot was installed: the host must restore its application
    /// state from this payload (entries up to the snapshot never appear in
    /// `committed`).
    pub installed_snapshot: Option<Vec<u8>>,
    /// This step made the node leader.
    pub became_leader: bool,
    /// This step demoted the node.
    pub lost_leadership: bool,
}

impl<O> Default for RaftEffects<O> {
    fn default() -> Self {
        RaftEffects {
            outbound: Vec::new(),
            committed: Vec::new(),
            installed_snapshot: None,
            became_leader: false,
            lost_leadership: false,
        }
    }
}

impl<O> RaftEffects<O> {
    /// An empty effects value.
    pub fn new() -> Self {
        Self::default()
    }
}

fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// One Raft replica's protocol state. `O` is the application operation.
pub struct RaftCore<O: Clone + std::fmt::Debug + PartialEq + 'static> {
    me: NodeId,
    tun: RaftTunables,

    term: Term,
    voted_for: Option<NodeId>,
    role: RaftRole,
    leader_hint: Option<NodeId>,

    /// Snapshot covering indices `..= snap_index`.
    snap_index: Index,
    snap_term: Term,
    snap_data: Vec<u8>,
    /// Configuration effective at `snap_index`.
    snap_members: Vec<NodeId>,
    /// Entries for indices `snap_index + 1 ..`.
    log: Vec<(Term, Arc<Cmd<O>>)>,
    /// The configuration effective now (latest config entry in the log,
    /// else the snapshot's) — maintained incrementally because scanning
    /// the log per call is quadratic on the hot path.
    cached_members: Vec<NodeId>,

    commit: Index,
    delivered: Index,

    votes: BTreeSet<NodeId>,
    next_index: BTreeMap<NodeId, Index>,
    match_index: BTreeMap<NodeId, Index>,
    /// When a snapshot was last shipped to each peer — at most one
    /// outstanding snapshot per peer per interval, or a lagging follower
    /// triggers an unbounded stream of full-state messages.
    snap_sent_at: BTreeMap<NodeId, SimTime>,

    last_heartbeat: SimTime,
    election_deadline: SimTime,
    election_attempt: u64,
}

impl<O: Clone + std::fmt::Debug + PartialEq + 'static> RaftCore<O> {
    /// Creates a member of the initial cluster.
    pub fn new(me: NodeId, initial: StaticConfig, now: SimTime, tun: RaftTunables) -> Self {
        let mut c = Self::empty(me, tun);
        c.snap_members = initial.members().to_vec();
        c.cached_members = c.snap_members.clone();
        c.reset_election_deadline(now);
        c
    }

    /// Creates a member whose genesis state is a snapshot at index 1
    /// carrying `data` (e.g. a pre-loaded application image). Blank joiners
    /// added later are then bootstrapped through `InstallSnapshot`, which
    /// is how a non-empty initial state reaches them.
    pub fn with_genesis_snapshot(
        me: NodeId,
        initial: StaticConfig,
        data: Vec<u8>,
        now: SimTime,
        tun: RaftTunables,
    ) -> Self {
        let mut c = Self::new(me, initial, now, tun);
        c.snap_index = 1;
        c.snap_term = 0;
        c.snap_data = data;
        c.commit = 1;
        c.delivered = 1;
        c
    }

    /// Creates a blank joining node: it has no configuration and will not
    /// campaign; it learns everything from the leader's RPCs.
    pub fn blank(me: NodeId, tun: RaftTunables) -> Self {
        Self::empty(me, tun)
    }

    fn empty(me: NodeId, tun: RaftTunables) -> Self {
        RaftCore {
            me,
            tun,
            term: 0,
            voted_for: None,
            role: RaftRole::Follower,
            leader_hint: None,
            snap_index: 0,
            snap_term: 0,
            snap_data: Vec::new(),
            snap_members: Vec::new(),
            log: Vec::new(),
            cached_members: Vec::new(),
            commit: 0,
            delivered: 0,
            votes: BTreeSet::new(),
            next_index: BTreeMap::new(),
            match_index: BTreeMap::new(),
            snap_sent_at: BTreeMap::new(),
            last_heartbeat: SimTime::ZERO,
            election_deadline: SimTime::MAX,
            election_attempt: 0,
        }
    }

    // --- Log geometry ------------------------------------------------------

    fn last_index(&self) -> Index {
        self.snap_index + self.log.len() as Index
    }

    fn term_at(&self, index: Index) -> Option<Term> {
        if index == 0 {
            return Some(0);
        }
        if index == self.snap_index {
            return Some(self.snap_term);
        }
        if index < self.snap_index {
            return None; // compacted away
        }
        self.log
            .get((index - self.snap_index - 1) as usize)
            .map(|(t, _)| *t)
    }

    fn entry_at(&self, index: Index) -> Option<&(Term, Arc<Cmd<O>>)> {
        if index <= self.snap_index {
            return None;
        }
        self.log.get((index - self.snap_index - 1) as usize)
    }

    /// The configuration effective *now* (latest config entry anywhere in
    /// the log, else the snapshot's).
    pub fn current_members(&self) -> Vec<NodeId> {
        self.cached_members.clone()
    }

    /// Appends an entry, keeping the members cache coherent.
    fn push_entry(&mut self, term: Term, cmd: Arc<Cmd<O>>) {
        if let Cmd::Reconfigure { members } = &*cmd {
            self.cached_members = members.clone();
        }
        self.log.push((term, cmd));
    }

    /// Recomputes the members cache by scanning (used after truncation or
    /// snapshot installation — rare events).
    fn recompute_members(&mut self) {
        for (_, cmd) in self.log.iter().rev() {
            if let Cmd::Reconfigure { members } = &**cmd {
                self.cached_members = members.clone();
                return;
            }
        }
        self.cached_members = self.snap_members.clone();
    }

    fn quorum(&self) -> usize {
        self.cached_members.len() / 2 + 1
    }

    fn has_uncommitted_config(&self) -> bool {
        let from = self.commit.max(self.snap_index);
        ((from + 1)..=self.last_index()).any(|i| {
            matches!(
                self.entry_at(i),
                Some((_, c)) if matches!(&**c, Cmd::Reconfigure { .. })
            )
        })
    }

    // --- Accessors ---------------------------------------------------------

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Current role.
    pub fn role(&self) -> RaftRole {
        self.role
    }

    /// True when leading.
    pub fn is_leader(&self) -> bool {
        self.role == RaftRole::Leader
    }

    /// Best-known leader.
    pub fn leader_hint(&self) -> Option<NodeId> {
        if self.is_leader() {
            Some(self.me)
        } else {
            self.leader_hint
        }
    }

    /// Current term.
    pub fn term(&self) -> Term {
        self.term
    }

    /// Commit index.
    pub fn commit_index(&self) -> Index {
        self.commit
    }

    /// Entries applied (delivered) so far beyond the snapshot.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// The highest index delivered through [`RaftEffects::committed`].
    pub fn delivered_index(&self) -> Index {
        self.delivered
    }

    /// The index covered by the current snapshot.
    pub fn snapshot_index(&self) -> Index {
        self.snap_index
    }

    /// Steps down voluntarily (used after committing a configuration entry
    /// that removes this node). A node outside the configuration never
    /// campaigns, so this is terminal until it is added back.
    pub fn abdicate(&mut self) {
        self.role = RaftRole::Follower;
        self.votes.clear();
    }

    // --- Inputs -------------------------------------------------------------

    /// Submits an application command.
    pub fn propose(&mut self, cmd: Cmd<O>, now: SimTime) -> (RaftEffects<O>, RaftPropose) {
        let mut fx = RaftEffects::new();
        if self.role != RaftRole::Leader {
            return (fx, RaftPropose::NotLeader(self.leader_hint));
        }
        if let Cmd::Reconfigure { members } = &cmd {
            if self.has_uncommitted_config()
                || !Self::single_change(&self.current_members(), members)
            {
                return (fx, RaftPropose::BadReconfigure);
            }
        }
        self.push_entry(self.term, Arc::new(cmd));
        let index = self.last_index();
        self.replicate_all(now, &mut fx);
        self.advance_commit(&mut fx);
        (fx, RaftPropose::Appended(index))
    }

    /// True when `b` differs from `a` by at most one server.
    pub fn single_change(a: &[NodeId], b: &[NodeId]) -> bool {
        if b.is_empty() {
            return false;
        }
        let sa: BTreeSet<_> = a.iter().collect();
        let sb: BTreeSet<_> = b.iter().collect();
        sa.symmetric_difference(&sb).count() <= 1
    }

    /// Handles one RPC.
    pub fn on_message(&mut self, from: NodeId, rpc: RaftRpc<O>, now: SimTime) -> RaftEffects<O> {
        let mut fx = RaftEffects::new();
        match rpc {
            RaftRpc::RequestVote {
                term,
                last_index,
                last_term,
            } => self.on_request_vote(from, term, last_index, last_term, now, &mut fx),
            RaftRpc::VoteReply { term, granted } => {
                self.on_vote_reply(from, term, granted, now, &mut fx)
            }
            RaftRpc::Append {
                term,
                prev_index,
                prev_term,
                entries,
                commit,
            } => self.on_append(
                from, term, prev_index, prev_term, entries, commit, now, &mut fx,
            ),
            RaftRpc::AppendReply {
                term,
                success,
                match_index,
                hint_index,
            } => self.on_append_reply(from, term, success, match_index, hint_index, now, &mut fx),
            RaftRpc::InstallSnapshot {
                term,
                last_index,
                last_term,
                members,
                data,
            } => self.on_install_snapshot(
                from, term, last_index, last_term, members, data, now, &mut fx,
            ),
            RaftRpc::SnapshotReply { term, last_index } => {
                self.on_snapshot_reply(from, term, last_index, now, &mut fx)
            }
        }
        fx
    }

    /// Advances timers: heartbeats (leader), elections (others).
    pub fn tick(&mut self, now: SimTime) -> RaftEffects<O> {
        let mut fx = RaftEffects::new();
        match self.role {
            RaftRole::Leader => {
                if now.since(self.last_heartbeat) >= self.tun.heartbeat_interval {
                    self.replicate_all(now, &mut fx);
                }
            }
            _ => {
                let members = self.current_members();
                if members.contains(&self.me) && now >= self.election_deadline {
                    self.start_election(now, &mut fx);
                }
            }
        }
        fx
    }

    /// Compacts the log through `upto` (which must be ≤ the delivered
    /// index), storing `data` as the snapshot payload.
    pub fn compact(&mut self, upto: Index, data: Vec<u8>) {
        if upto <= self.snap_index || upto > self.delivered {
            return;
        }
        // Fold configuration entries out of the compacted range.
        let mut members = self.snap_members.clone();
        for i in (self.snap_index + 1)..=upto {
            if let Some((_, c)) = self.entry_at(i) {
                if let Cmd::Reconfigure { members: m } = &**c {
                    members = m.clone();
                }
            }
        }
        let new_term = self.term_at(upto).expect("upto is within the log");
        let drop = (upto - self.snap_index) as usize;
        self.log.drain(..drop);
        self.snap_index = upto;
        self.snap_term = new_term;
        self.snap_members = members;
        self.snap_data = data;
    }

    // --- Elections ----------------------------------------------------------

    fn election_timeout(&self) -> SimDuration {
        let jitter_us = if self.tun.election_jitter.is_zero() {
            0
        } else {
            mix64(
                self.me
                    .0
                    .wrapping_mul(131)
                    .wrapping_add(self.election_attempt),
            ) % self.tun.election_jitter.as_micros()
        };
        self.tun.election_timeout + SimDuration::from_micros(jitter_us)
    }

    fn reset_election_deadline(&mut self, now: SimTime) {
        self.election_deadline = now + self.election_timeout();
    }

    fn start_election(&mut self, now: SimTime, fx: &mut RaftEffects<O>) {
        self.election_attempt += 1;
        self.term += 1;
        self.role = RaftRole::Candidate;
        self.voted_for = Some(self.me);
        self.votes.clear();
        self.votes.insert(self.me);
        self.reset_election_deadline(now);
        let (last_index, last_term) = (
            self.last_index(),
            self.term_at(self.last_index()).unwrap_or(0),
        );
        for peer in self.peers() {
            fx.outbound.push((
                peer,
                RaftRpc::RequestVote {
                    term: self.term,
                    last_index,
                    last_term,
                },
            ));
        }
        self.check_votes(now, fx);
    }

    fn peers(&self) -> Vec<NodeId> {
        self.cached_members
            .iter()
            .copied()
            .filter(|&m| m != self.me)
            .collect()
    }

    fn adopt_term(&mut self, term: Term, fx: &mut RaftEffects<O>) {
        if term > self.term {
            self.term = term;
            self.voted_for = None;
            if self.role == RaftRole::Leader {
                fx.lost_leadership = true;
            }
            self.role = RaftRole::Follower;
            self.votes.clear();
        }
    }

    fn on_request_vote(
        &mut self,
        from: NodeId,
        term: Term,
        last_index: Index,
        last_term: Term,
        now: SimTime,
        fx: &mut RaftEffects<O>,
    ) {
        self.adopt_term(term, fx);
        let my_last = self.last_index();
        let my_last_term = self.term_at(my_last).unwrap_or(0);
        let up_to_date =
            last_term > my_last_term || (last_term == my_last_term && last_index >= my_last);
        let granted = term == self.term
            && up_to_date
            && (self.voted_for.is_none() || self.voted_for == Some(from));
        if granted {
            self.voted_for = Some(from);
            self.reset_election_deadline(now);
        }
        fx.outbound.push((
            from,
            RaftRpc::VoteReply {
                term: self.term,
                granted,
            },
        ));
    }

    fn on_vote_reply(
        &mut self,
        from: NodeId,
        term: Term,
        granted: bool,
        now: SimTime,
        fx: &mut RaftEffects<O>,
    ) {
        self.adopt_term(term, fx);
        if self.role != RaftRole::Candidate || term != self.term || !granted {
            return;
        }
        self.votes.insert(from);
        self.check_votes(now, fx);
    }

    fn check_votes(&mut self, now: SimTime, fx: &mut RaftEffects<O>) {
        if self.role == RaftRole::Candidate && self.votes.len() >= self.quorum() {
            self.role = RaftRole::Leader;
            self.leader_hint = Some(self.me);
            fx.became_leader = true;
            self.next_index.clear();
            self.match_index.clear();
            let next = self.last_index() + 1;
            for peer in self.peers() {
                self.next_index.insert(peer, next);
                self.match_index.insert(peer, 0);
            }
            // Commit barrier: a no-op from the new term.
            self.push_entry(self.term, Arc::new(Cmd::Noop));
            self.replicate_all(now, fx);
        }
    }

    // --- Replication ----------------------------------------------------------

    fn replicate_all(&mut self, now: SimTime, fx: &mut RaftEffects<O>) {
        self.last_heartbeat = now;
        for peer in self.peers() {
            self.replicate_one(peer, now, fx);
        }
    }

    /// Minimum spacing between full-snapshot sends to one peer.
    const SNAPSHOT_RESEND: SimDuration = SimDuration::from_millis(500);

    fn replicate_one(&mut self, peer: NodeId, now: SimTime, fx: &mut RaftEffects<O>) {
        let next = *self.next_index.entry(peer).or_insert(self.snap_index + 1);
        if next <= self.snap_index {
            // Throttle: one outstanding snapshot per peer per interval.
            let last_sent = self.snap_sent_at.get(&peer).copied();
            if let Some(at) = last_sent {
                if now.since(at) < Self::SNAPSHOT_RESEND {
                    return;
                }
            }
            self.snap_sent_at.insert(peer, now);
            fx.outbound.push((
                peer,
                RaftRpc::InstallSnapshot {
                    term: self.term,
                    last_index: self.snap_index,
                    last_term: self.snap_term,
                    members: self.snap_members.clone(),
                    data: self.snap_data.clone(),
                },
            ));
            // Optimistically assume installation; a reply corrects this.
            self.next_index.insert(peer, self.snap_index + 1);
            return;
        }
        let prev_index = next - 1;
        let Some(prev_term) = self.term_at(prev_index) else {
            // prev fell behind the snapshot between checks.
            self.next_index.insert(peer, self.snap_index);
            return;
        };
        let from = next;
        let to = self.last_index().min(from + self.tun.batch as Index - 1);
        let entries: Vec<(Term, Arc<Cmd<O>>)> = (from..=to)
            .filter_map(|i| self.entry_at(i).cloned())
            .collect();
        // Pipelining: advance next_index optimistically so the next
        // propose ships only new entries; failures rewind it via the
        // reply's hint, losses via the follower's mismatch hint.
        if !entries.is_empty() {
            self.next_index.insert(peer, to + 1);
        }
        fx.outbound.push((
            peer,
            RaftRpc::Append {
                term: self.term,
                prev_index,
                prev_term,
                entries,
                commit: self.commit,
            },
        ));
    }

    #[allow(clippy::too_many_arguments)]
    fn on_append(
        &mut self,
        from: NodeId,
        term: Term,
        prev_index: Index,
        prev_term: Term,
        entries: Vec<(Term, Arc<Cmd<O>>)>,
        commit: Index,
        now: SimTime,
        fx: &mut RaftEffects<O>,
    ) {
        self.adopt_term(term, fx);
        if term < self.term {
            fx.outbound.push((
                from,
                RaftRpc::AppendReply {
                    term: self.term,
                    success: false,
                    match_index: 0,
                    hint_index: self.last_index() + 1,
                },
            ));
            return;
        }
        // A current-term Append asserts leadership.
        if self.role != RaftRole::Follower {
            if self.role == RaftRole::Leader {
                fx.lost_leadership = true;
            }
            self.role = RaftRole::Follower;
        }
        self.leader_hint = Some(from);
        self.reset_election_deadline(now);

        // Consistency check. Indices at or below our snapshot are part of
        // the committed prefix the snapshot covers, so they match by
        // construction (the per-entry loop below skips them).
        let ok = prev_index < self.snap_index
            || match self.term_at(prev_index) {
                Some(t) => t == prev_term,
                None => false,
            };
        if !ok {
            // Either our log is too short (prev beyond it) or the entry at
            // prev conflicts; tell the leader where to resume.
            let hint = (self.last_index() + 1)
                .min(prev_index)
                .max(self.snap_index + 1);
            fx.outbound.push((
                from,
                RaftRpc::AppendReply {
                    term: self.term,
                    success: false,
                    match_index: 0,
                    hint_index: hint,
                },
            ));
            return;
        }
        // Append, truncating conflicts.
        let mut index = prev_index;
        for (t, cmd) in entries {
            index += 1;
            if index <= self.snap_index {
                continue; // covered by our snapshot
            }
            match self.term_at(index) {
                Some(existing) if existing == t => continue, // already have it
                Some(_) => {
                    // Conflict: truncate from here (dropping any cached
                    // config the suffix carried), then append.
                    let keep = (index - self.snap_index - 1) as usize;
                    self.log.truncate(keep);
                    self.recompute_members();
                    self.push_entry(t, cmd);
                }
                None => self.push_entry(t, cmd),
            }
        }
        let match_index = index.max(self.last_index().min(prev_index));
        let new_commit = commit.min(self.last_index());
        if new_commit > self.commit {
            self.commit = new_commit;
            self.deliver(fx);
        }
        fx.outbound.push((
            from,
            RaftRpc::AppendReply {
                term: self.term,
                success: true,
                match_index,
                hint_index: 0,
            },
        ));
    }

    // The arguments mirror the `AppendReply` wire fields one-to-one.
    #[allow(clippy::too_many_arguments)]
    fn on_append_reply(
        &mut self,
        from: NodeId,
        term: Term,
        success: bool,
        match_index: Index,
        hint_index: Index,
        _now: SimTime,
        fx: &mut RaftEffects<O>,
    ) {
        self.adopt_term(term, fx);
        if self.role != RaftRole::Leader || term != self.term {
            return;
        }
        if success {
            let m = self.match_index.entry(from).or_insert(0);
            *m = (*m).max(match_index);
            let next = self.next_index.entry(from).or_insert(match_index + 1);
            *next = (*next).max(match_index + 1);
            self.advance_commit(fx);
            // Keep streaming only if un-sent entries remain (pipelined
            // batches in flight don't need re-sending).
            if *self.next_index.get(&from).expect("just set") <= self.last_index() {
                self.replicate_one(from, _now, fx);
            }
        } else {
            // Rewind to the follower's hint (never forward).
            let current = *self.next_index.entry(from).or_insert(self.snap_index + 1);
            let next = hint_index.max(1).min(current).min(self.last_index() + 1);
            self.next_index.insert(from, next);
            self.replicate_one(from, _now, fx);
        }
    }

    fn advance_commit(&mut self, fx: &mut RaftEffects<O>) {
        let members = self.cached_members.clone();
        let quorum = self.quorum();
        let mut candidate = self.last_index();
        while candidate > self.commit {
            if self.term_at(candidate) == Some(self.term) {
                let mut count = 0;
                for m in &members {
                    let matched = if *m == self.me {
                        self.last_index()
                    } else {
                        self.match_index.get(m).copied().unwrap_or(0)
                    };
                    if matched >= candidate {
                        count += 1;
                    }
                }
                if count >= quorum {
                    break;
                }
            }
            candidate -= 1;
        }
        if candidate > self.commit {
            self.commit = candidate;
            self.deliver(fx);
        }
    }

    fn deliver(&mut self, fx: &mut RaftEffects<O>) {
        self.delivered = self.delivered.max(self.snap_index);
        while self.delivered < self.commit {
            let next = self.delivered + 1;
            let Some((_, cmd)) = self.entry_at(next) else {
                break;
            };
            fx.committed.push((next, cmd.clone()));
            self.delivered = next;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_install_snapshot(
        &mut self,
        from: NodeId,
        term: Term,
        last_index: Index,
        last_term: Term,
        members: Vec<NodeId>,
        data: Vec<u8>,
        now: SimTime,
        fx: &mut RaftEffects<O>,
    ) {
        self.adopt_term(term, fx);
        if term < self.term {
            fx.outbound.push((
                from,
                RaftRpc::SnapshotReply {
                    term: self.term,
                    last_index: self.snap_index,
                },
            ));
            return;
        }
        self.leader_hint = Some(from);
        self.reset_election_deadline(now);
        if last_index > self.commit {
            self.snap_index = last_index;
            self.snap_term = last_term;
            self.snap_members = members;
            self.snap_data = data.clone();
            self.log.clear();
            self.cached_members = self.snap_members.clone();
            self.commit = last_index;
            self.delivered = last_index;
            fx.installed_snapshot = Some(data);
        }
        fx.outbound.push((
            from,
            RaftRpc::SnapshotReply {
                term: self.term,
                last_index: self.snap_index,
            },
        ));
    }

    fn on_snapshot_reply(
        &mut self,
        from: NodeId,
        term: Term,
        last_index: Index,
        now: SimTime,
        fx: &mut RaftEffects<O>,
    ) {
        self.adopt_term(term, fx);
        if self.role != RaftRole::Leader || term != self.term {
            return;
        }
        // The peer answered: the outstanding-snapshot slot is free again.
        self.snap_sent_at.remove(&from);
        let next = self.next_index.entry(from).or_insert(last_index + 1);
        *next = (*next).max(last_index + 1);
        let m = self.match_index.entry(from).or_insert(0);
        *m = (*m).max(last_index);
        if *self.next_index.get(&from).expect("just set") <= self.last_index() {
            self.replicate_one(from, now, fx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// One node's committed prefix as observed by the harness.
    type CommitLog = Vec<(Index, Arc<Cmd<u64>>)>;

    /// Lossless in-memory harness.
    struct Net {
        cores: BTreeMap<NodeId, RaftCore<u64>>,
        inbox: VecDeque<(NodeId, NodeId, RaftRpc<u64>)>,
        committed: BTreeMap<NodeId, CommitLog>,
        cut: BTreeSet<NodeId>,
        now: SimTime,
    }

    impl Net {
        fn new(n: u64) -> Self {
            let members: Vec<NodeId> = (0..n).map(NodeId).collect();
            let cfg = StaticConfig::new(members.clone());
            Net {
                cores: members
                    .iter()
                    .map(|&m| {
                        (
                            m,
                            RaftCore::new(m, cfg.clone(), SimTime::ZERO, RaftTunables::default()),
                        )
                    })
                    .collect(),
                inbox: VecDeque::new(),
                committed: BTreeMap::new(),
                cut: BTreeSet::new(),
                now: SimTime::ZERO,
            }
        }

        fn absorb(&mut self, from: NodeId, fx: RaftEffects<u64>) {
            for (to, rpc) in fx.outbound {
                self.inbox.push_back((from, to, rpc));
            }
            self.committed.entry(from).or_default().extend(fx.committed);
        }

        fn advance(&mut self, d: SimDuration) {
            self.now += d;
            let ids: Vec<NodeId> = self.cores.keys().copied().collect();
            for id in ids {
                if self.cut.contains(&id) {
                    continue;
                }
                let fx = self.cores.get_mut(&id).unwrap().tick(self.now);
                self.absorb(id, fx);
            }
            while let Some((from, to, rpc)) = self.inbox.pop_front() {
                if self.cut.contains(&from) || self.cut.contains(&to) {
                    continue;
                }
                if let Some(core) = self.cores.get_mut(&to) {
                    let fx = core.on_message(from, rpc, self.now);
                    self.absorb(to, fx);
                }
            }
        }

        fn elect(&mut self) -> NodeId {
            for _ in 0..1000 {
                self.advance(SimDuration::from_millis(10));
                if let Some(l) = self.leader() {
                    return l;
                }
            }
            panic!("no raft leader");
        }

        fn leader(&self) -> Option<NodeId> {
            self.cores
                .iter()
                .filter(|(id, c)| !self.cut.contains(id) && c.is_leader())
                .map(|(&id, _)| id)
                .next()
        }

        fn propose(&mut self, cmd: Cmd<u64>) -> RaftPropose {
            let l = self.leader().expect("leader");
            let (fx, res) = self.cores.get_mut(&l).unwrap().propose(cmd, self.now);
            self.absorb(l, fx);
            self.advance(SimDuration::from_millis(1));
            res
        }

        fn app_values(&self, id: NodeId) -> Vec<u64> {
            self.committed
                .get(&id)
                .map(|v| {
                    v.iter()
                        .filter_map(|(_, c)| match &**c {
                            Cmd::App { op, .. } => Some(*op),
                            _ => None,
                        })
                        .collect()
                })
                .unwrap_or_default()
        }
    }

    fn app(op: u64) -> Cmd<u64> {
        Cmd::App {
            client: NodeId(100),
            seq: op,
            op,
        }
    }

    #[test]
    fn elects_exactly_one_leader() {
        let mut net = Net::new(3);
        net.elect();
        assert_eq!(net.cores.values().filter(|c| c.is_leader()).count(), 1);
    }

    #[test]
    fn commits_in_order_on_all_replicas() {
        let mut net = Net::new(3);
        net.elect();
        for i in 1..=5 {
            assert!(matches!(net.propose(app(i)), RaftPropose::Appended(_)));
        }
        net.advance(SimDuration::from_millis(100));
        for id in net.cores.keys().copied().collect::<Vec<_>>() {
            assert_eq!(net.app_values(id), vec![1, 2, 3, 4, 5], "{id}");
        }
    }

    #[test]
    fn leader_crash_preserves_committed_prefix() {
        let mut net = Net::new(3);
        let l1 = net.elect();
        for i in 1..=3 {
            net.propose(app(i));
        }
        net.advance(SimDuration::from_millis(100));
        net.cut.insert(l1);
        let mut l2 = l1;
        for _ in 0..500 {
            net.advance(SimDuration::from_millis(10));
            if let Some(l) = net.leader() {
                l2 = l;
                break;
            }
        }
        assert_ne!(l2, l1);
        net.propose(app(9));
        net.advance(SimDuration::from_millis(200));
        let vals = net.app_values(l2);
        assert!(vals.starts_with(&[1, 2, 3]), "{vals:?}");
        assert!(vals.contains(&9));
    }

    #[test]
    fn single_change_rule() {
        let a = [NodeId(1), NodeId(2), NodeId(3)];
        assert!(RaftCore::<u64>::single_change(&a, &a));
        assert!(RaftCore::<u64>::single_change(
            &a,
            &[NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        ));
        assert!(RaftCore::<u64>::single_change(&a, &[NodeId(1), NodeId(2)]));
        assert!(!RaftCore::<u64>::single_change(
            &a,
            &[NodeId(1), NodeId(4), NodeId(5)]
        ));
        assert!(!RaftCore::<u64>::single_change(&a, &[]));
    }

    #[test]
    fn reconfigure_is_refused_while_one_is_pending() {
        let mut net = Net::new(3);
        let l = net.elect();
        // Block replication so the config entry stays uncommitted.
        let peers: Vec<NodeId> = net.cores.keys().copied().filter(|&n| n != l).collect();
        for p in &peers {
            net.cut.insert(*p);
        }
        let (fx, r1) = net.cores.get_mut(&l).unwrap().propose(
            Cmd::Reconfigure {
                members: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            },
            net.now,
        );
        net.absorb(l, fx);
        assert!(matches!(r1, RaftPropose::Appended(_)));
        let (fx, r2) = net.cores.get_mut(&l).unwrap().propose(
            Cmd::Reconfigure {
                members: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(4)],
            },
            net.now,
        );
        net.absorb(l, fx);
        assert_eq!(r2, RaftPropose::BadReconfigure);
    }

    #[test]
    fn membership_add_takes_effect_and_commits() {
        let mut net = Net::new(3);
        net.elect();
        // Add node 3.
        let joiner = NodeId(3);
        net.cores
            .insert(joiner, RaftCore::blank(joiner, RaftTunables::default()));
        let res = net.propose(Cmd::Reconfigure {
            members: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
        });
        assert!(matches!(res, RaftPropose::Appended(_)));
        net.advance(SimDuration::from_millis(200));
        // The joiner received the log and knows the config.
        let members = net.cores[&joiner].current_members();
        assert!(members.contains(&joiner), "{members:?}");
        // And further commands reach it.
        net.propose(app(7));
        net.advance(SimDuration::from_millis(200));
        assert!(net.app_values(joiner).contains(&7));
    }

    #[test]
    fn compaction_and_snapshot_install() {
        let mut net = Net::new(3);
        let l = net.elect();
        for i in 1..=10 {
            net.propose(app(i));
        }
        net.advance(SimDuration::from_millis(100));
        // Compact the leader aggressively, then add a blank joiner: it must
        // be brought up through InstallSnapshot.
        {
            let core = net.cores.get_mut(&l).unwrap();
            let upto = core.delivered;
            core.compact(upto, vec![9, 9, 9]);
            assert!(core.log_len() < 10);
        }
        let joiner = NodeId(3);
        net.cores
            .insert(joiner, RaftCore::blank(joiner, RaftTunables::default()));
        net.propose(Cmd::Reconfigure {
            members: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
        });
        net.advance(SimDuration::from_millis(300));
        let j = &net.cores[&joiner];
        assert!(j.snap_index > 0, "snapshot must have been installed");
        assert_eq!(j.snap_data, vec![9, 9, 9]);
        assert!(j.current_members().contains(&joiner));
    }

    #[test]
    fn blank_nodes_never_campaign() {
        let mut net = Net::new(1);
        let blank = NodeId(9);
        net.cores
            .insert(blank, RaftCore::blank(blank, RaftTunables::default()));
        net.advance(SimDuration::from_secs(5));
        assert_eq!(net.cores[&blank].role(), RaftRole::Follower);
        assert_eq!(net.cores[&blank].term(), net.cores[&blank].term());
    }
}
