//! A sans-I/O Raft core with single-server membership changes.
//!
//! This is the "natively reconfigurable" comparator: instead of composing
//! static instances, reconfiguration is woven into the replication protocol
//! itself — configuration entries in the log, effective as soon as they are
//! appended, changed one server at a time (§4.4 of the Raft dissertation).
//! Log compaction and `InstallSnapshot` carry joining members.
//!
//! The core mirrors the structure of `consensus::MultiPaxos`: inputs are
//! RPCs and clock ticks, outputs are [`RaftEffects`].

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use consensus::StaticConfig;
use rsmr_core::command::Cmd;
use simnet::wire::{self, Wire};
use simnet::{NodeId, SimDuration, SimTime};

use super::msg::{Index, RaftRpc, Term};

/// Timing and sizing knobs.
#[derive(Clone, Debug)]
pub struct RaftTunables {
    /// Leader heartbeat interval.
    pub heartbeat_interval: SimDuration,
    /// Base election timeout.
    pub election_timeout: SimDuration,
    /// Maximum deterministic jitter added to the election timeout.
    pub election_jitter: SimDuration,
    /// Compact the log once this many applied entries accumulate.
    pub compact_threshold: u64,
    /// Maximum entries per `Append`.
    pub batch: usize,
    /// Leader-side command batching: accumulate up to this many client
    /// commands and append them as one `Cmd::Batch` log entry (flushed
    /// when the buffer fills or at the next tick). `0` disables batching.
    pub cmd_batch: usize,
}

impl Default for RaftTunables {
    fn default() -> Self {
        RaftTunables {
            heartbeat_interval: SimDuration::from_millis(20),
            election_timeout: SimDuration::from_millis(150),
            election_jitter: SimDuration::from_millis(150),
            compact_threshold: 1024,
            batch: 512,
            cmd_batch: 0,
        }
    }
}

/// The node's current role.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RaftRole {
    /// Passive replica.
    Follower,
    /// Campaigning for leadership.
    Candidate,
    /// Serializes commands.
    Leader,
}

/// What a [`RaftCore::propose`] did.
#[derive(Clone, PartialEq, Debug)]
pub enum RaftPropose {
    /// Appended at this index.
    Appended(Index),
    /// Not the leader; retry at the hint.
    NotLeader(Option<NodeId>),
    /// (Reconfigure only) refused: an uncommitted config change is pending
    /// or the request changes more than one server.
    BadReconfigure,
}

/// Effects of one core step.
#[derive(Debug)]
pub struct RaftEffects<O> {
    /// RPCs to send.
    pub outbound: Vec<(NodeId, RaftRpc<O>)>,
    /// Newly committed entries, in log order, delivered exactly once.
    pub committed: Vec<(Index, Arc<Cmd<O>>)>,
    /// A snapshot was installed: the host must restore its application
    /// state from this payload (entries up to the snapshot never appear in
    /// `committed`).
    pub installed_snapshot: Option<Vec<u8>>,
    /// Hard-state writes: `(key, value)` pairs the host must put to stable
    /// storage before the messages in `outbound` are released (write-ahead
    /// — persisting at end-of-callback satisfies this in the simulator,
    /// where emitted messages are not delivered until the callback ends).
    /// Keys are storage-relative; the host adds its own namespace prefix.
    pub persist: Vec<(String, Vec<u8>)>,
    /// Keys to delete from stable storage (log truncation / compaction).
    pub unpersist: Vec<String>,
    /// This step made the node leader.
    pub became_leader: bool,
    /// This step demoted the node.
    pub lost_leadership: bool,
}

impl<O> Default for RaftEffects<O> {
    fn default() -> Self {
        RaftEffects {
            outbound: Vec::new(),
            committed: Vec::new(),
            installed_snapshot: None,
            persist: Vec::new(),
            unpersist: Vec::new(),
            became_leader: false,
            lost_leadership: false,
        }
    }
}

impl<O> RaftEffects<O> {
    /// An empty effects value.
    pub fn new() -> Self {
        Self::default()
    }
}

fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Stable-storage key of the `(term, voted_for)` pair.
const KEY_HARD_STATE: &str = "hs";
/// Stable-storage key of the snapshot `((index, term), (members, data))`.
const KEY_SNAPSHOT: &str = "snap";

fn log_key(index: Index) -> String {
    format!("log/{index:016x}")
}

/// One Raft replica's protocol state. `O` is the application operation.
pub struct RaftCore<O: Clone + std::fmt::Debug + PartialEq + Wire + 'static> {
    me: NodeId,
    tun: RaftTunables,

    term: Term,
    voted_for: Option<NodeId>,
    role: RaftRole,
    leader_hint: Option<NodeId>,

    /// Snapshot covering indices `..= snap_index`.
    snap_index: Index,
    snap_term: Term,
    snap_data: Vec<u8>,
    /// Configuration effective at `snap_index`.
    snap_members: Vec<NodeId>,
    /// Number of `Reconfigure` entries at indices `..= snap_index` — hosts
    /// label applies with a configuration-era counter, which must survive
    /// compaction and snapshot installation even though the entries
    /// themselves are gone.
    snap_eras: u64,
    /// Entries for indices `snap_index + 1 ..`.
    log: Vec<(Term, Arc<Cmd<O>>)>,
    /// The configuration effective now (latest config entry in the log,
    /// else the snapshot's) — maintained incrementally because scanning
    /// the log per call is quadratic on the hot path.
    cached_members: Vec<NodeId>,

    commit: Index,
    delivered: Index,

    votes: BTreeSet<NodeId>,
    next_index: BTreeMap<NodeId, Index>,
    match_index: BTreeMap<NodeId, Index>,
    /// When a snapshot was last shipped to each peer — at most one
    /// outstanding snapshot per peer per interval, or a lagging follower
    /// triggers an unbounded stream of full-state messages.
    snap_sent_at: BTreeMap<NodeId, SimTime>,

    last_heartbeat: SimTime,
    election_deadline: SimTime,
    election_attempt: u64,
}

impl<O: Clone + std::fmt::Debug + PartialEq + Wire + 'static> RaftCore<O> {
    /// Creates a member of the initial cluster.
    pub fn new(me: NodeId, initial: StaticConfig, now: SimTime, tun: RaftTunables) -> Self {
        let mut c = Self::empty(me, tun);
        c.snap_members = initial.members().to_vec();
        c.cached_members = c.snap_members.clone();
        c.reset_election_deadline(now);
        c
    }

    /// Creates a member whose genesis state is a snapshot at index 1
    /// carrying `data` (e.g. a pre-loaded application image). Blank joiners
    /// added later are then bootstrapped through `InstallSnapshot`, which
    /// is how a non-empty initial state reaches them.
    pub fn with_genesis_snapshot(
        me: NodeId,
        initial: StaticConfig,
        data: Vec<u8>,
        now: SimTime,
        tun: RaftTunables,
    ) -> Self {
        let mut c = Self::new(me, initial, now, tun);
        c.snap_index = 1;
        c.snap_term = 0;
        c.snap_data = data;
        c.commit = 1;
        c.delivered = 1;
        c
    }

    /// Creates a blank joining node: it has no configuration and will not
    /// campaign; it learns everything from the leader's RPCs.
    pub fn blank(me: NodeId, tun: RaftTunables) -> Self {
        Self::empty(me, tun)
    }

    /// Rebuilds a replica from persisted hard state after a crash.
    ///
    /// `items` are the `(key, value)` pairs previously written through
    /// [`RaftEffects::persist`] (namespace prefix already stripped). The
    /// node recovers as a follower: term and vote are restored (so it can
    /// never double-vote in a term), the snapshot and the contiguous log
    /// suffix above it are reloaded, and the commit/delivered cursors reset
    /// to the snapshot — committed-but-uncompacted entries are re-delivered
    /// once the next leader's `Append` advances the commit index, and the
    /// session table restored from the snapshot payload dedupes replies.
    pub fn recover(
        me: NodeId,
        now: SimTime,
        tun: RaftTunables,
        items: impl IntoIterator<Item = (String, Vec<u8>)>,
    ) -> Self {
        let mut c = Self::empty(me, tun);
        let mut entries: BTreeMap<Index, (Term, Arc<Cmd<O>>)> = BTreeMap::new();
        for (key, value) in items {
            if key == KEY_HARD_STATE {
                if let Some((term, voted_for)) = wire::from_bytes::<(Term, Option<NodeId>)>(&value)
                {
                    c.term = term;
                    c.voted_for = voted_for;
                }
            } else if key == KEY_SNAPSHOT {
                if let Some((index, term, members, eras, data)) =
                    wire::from_bytes::<(Index, Term, Vec<NodeId>, u64, Vec<u8>)>(&value)
                {
                    c.snap_index = index;
                    c.snap_term = term;
                    c.snap_members = members;
                    c.snap_eras = eras;
                    c.snap_data = data;
                }
            } else if let Some(hex) = key.strip_prefix("log/") {
                if let (Ok(index), Some(entry)) = (
                    Index::from_str_radix(hex, 16),
                    wire::from_bytes::<(Term, Arc<Cmd<O>>)>(&value),
                ) {
                    entries.insert(index, entry);
                }
            }
        }
        c.commit = c.snap_index;
        c.delivered = c.snap_index;
        // Reload the contiguous log suffix above the snapshot; anything
        // past a gap (a torn truncation) is unreachable and dropped.
        let mut next = c.snap_index + 1;
        while let Some(entry) = entries.remove(&next) {
            c.log.push(entry);
            next += 1;
        }
        c.recompute_members();
        c.reset_election_deadline(now);
        c
    }

    /// The `(key, value)` pairs a host should write when it first brings a
    /// replica up, so a crash before the first protocol step still recovers
    /// the genesis configuration and application image.
    pub fn bootstrap_persist(&self) -> Vec<(String, Vec<u8>)> {
        let mut out = vec![
            (
                KEY_HARD_STATE.to_owned(),
                wire::to_bytes(&(self.term, self.voted_for)),
            ),
            (
                KEY_SNAPSHOT.to_owned(),
                wire::to_bytes(&(
                    self.snap_index,
                    self.snap_term,
                    self.snap_members.clone(),
                    self.snap_eras,
                    self.snap_data.clone(),
                )),
            ),
        ];
        for (i, (term, cmd)) in self.log.iter().enumerate() {
            let index = self.snap_index + 1 + i as Index;
            out.push((log_key(index), wire::to_bytes(&(*term, cmd.clone()))));
        }
        out
    }

    fn empty(me: NodeId, tun: RaftTunables) -> Self {
        RaftCore {
            me,
            tun,
            term: 0,
            voted_for: None,
            role: RaftRole::Follower,
            leader_hint: None,
            snap_index: 0,
            snap_term: 0,
            snap_data: Vec::new(),
            snap_members: Vec::new(),
            snap_eras: 0,
            log: Vec::new(),
            cached_members: Vec::new(),
            commit: 0,
            delivered: 0,
            votes: BTreeSet::new(),
            next_index: BTreeMap::new(),
            match_index: BTreeMap::new(),
            snap_sent_at: BTreeMap::new(),
            last_heartbeat: SimTime::ZERO,
            election_deadline: SimTime::MAX,
            election_attempt: 0,
        }
    }

    // --- Log geometry ------------------------------------------------------

    fn last_index(&self) -> Index {
        self.snap_index + self.log.len() as Index
    }

    fn term_at(&self, index: Index) -> Option<Term> {
        if index == 0 {
            return Some(0);
        }
        if index == self.snap_index {
            return Some(self.snap_term);
        }
        if index < self.snap_index {
            return None; // compacted away
        }
        self.log
            .get((index - self.snap_index - 1) as usize)
            .map(|(t, _)| *t)
    }

    fn entry_at(&self, index: Index) -> Option<&(Term, Arc<Cmd<O>>)> {
        if index <= self.snap_index {
            return None;
        }
        self.log.get((index - self.snap_index - 1) as usize)
    }

    /// The configuration effective *now* (latest config entry anywhere in
    /// the log, else the snapshot's).
    pub fn current_members(&self) -> Vec<NodeId> {
        self.cached_members.clone()
    }

    /// Appends an entry, keeping the members cache coherent and recording
    /// the write-ahead persistence of the new entry.
    fn push_entry(&mut self, term: Term, cmd: Arc<Cmd<O>>, fx: &mut RaftEffects<O>) {
        if let Cmd::Reconfigure { members } = &*cmd {
            self.cached_members = members.clone();
        }
        fx.persist.push((
            log_key(self.last_index() + 1),
            wire::to_bytes(&(term, cmd.clone())),
        ));
        self.log.push((term, cmd));
    }

    /// Records the write-ahead persistence of `(term, voted_for)`.
    fn persist_hard_state(&self, fx: &mut RaftEffects<O>) {
        fx.persist.push((
            KEY_HARD_STATE.to_owned(),
            wire::to_bytes(&(self.term, self.voted_for)),
        ));
    }

    /// Records the write-ahead persistence of the current snapshot.
    fn persist_snapshot(&self, fx: &mut RaftEffects<O>) {
        fx.persist.push((
            KEY_SNAPSHOT.to_owned(),
            wire::to_bytes(&(
                self.snap_index,
                self.snap_term,
                self.snap_members.clone(),
                self.snap_eras,
                self.snap_data.clone(),
            )),
        ));
    }

    /// Recomputes the members cache by scanning (used after truncation or
    /// snapshot installation — rare events).
    fn recompute_members(&mut self) {
        for (_, cmd) in self.log.iter().rev() {
            if let Cmd::Reconfigure { members } = &**cmd {
                self.cached_members = members.clone();
                return;
            }
        }
        self.cached_members = self.snap_members.clone();
    }

    fn quorum(&self) -> usize {
        self.cached_members.len() / 2 + 1
    }

    fn has_uncommitted_config(&self) -> bool {
        let from = self.commit.max(self.snap_index);
        ((from + 1)..=self.last_index()).any(|i| {
            matches!(
                self.entry_at(i),
                Some((_, c)) if matches!(&**c, Cmd::Reconfigure { .. })
            )
        })
    }

    // --- Accessors ---------------------------------------------------------

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Current role.
    pub fn role(&self) -> RaftRole {
        self.role
    }

    /// True when leading.
    pub fn is_leader(&self) -> bool {
        self.role == RaftRole::Leader
    }

    /// Best-known leader.
    pub fn leader_hint(&self) -> Option<NodeId> {
        if self.is_leader() {
            Some(self.me)
        } else {
            self.leader_hint
        }
    }

    /// Current term.
    pub fn term(&self) -> Term {
        self.term
    }

    /// Commit index.
    pub fn commit_index(&self) -> Index {
        self.commit
    }

    /// Entries applied (delivered) so far beyond the snapshot.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// The highest index delivered through [`RaftEffects::committed`].
    pub fn delivered_index(&self) -> Index {
        self.delivered
    }

    /// The index covered by the current snapshot.
    pub fn snapshot_index(&self) -> Index {
        self.snap_index
    }

    /// The current snapshot's payload (empty when none was ever taken).
    pub fn snapshot_data(&self) -> &[u8] {
        &self.snap_data
    }

    /// Number of `Reconfigure` entries covered by the snapshot. Hosts
    /// resume their configuration-era counters from here after recovery or
    /// snapshot installation.
    pub fn snap_eras(&self) -> u64 {
        self.snap_eras
    }

    /// Steps down voluntarily (used after committing a configuration entry
    /// that removes this node). A node outside the configuration never
    /// campaigns, so this is terminal until it is added back.
    pub fn abdicate(&mut self) {
        self.role = RaftRole::Follower;
        self.votes.clear();
    }

    // --- Inputs -------------------------------------------------------------

    /// Submits an application command.
    pub fn propose(&mut self, cmd: Cmd<O>, now: SimTime) -> (RaftEffects<O>, RaftPropose) {
        let mut fx = RaftEffects::new();
        if self.role != RaftRole::Leader {
            return (fx, RaftPropose::NotLeader(self.leader_hint));
        }
        if let Cmd::Reconfigure { members } = &cmd {
            if self.has_uncommitted_config()
                || !Self::single_change(&self.current_members(), members)
            {
                return (fx, RaftPropose::BadReconfigure);
            }
        }
        self.push_entry(self.term, Arc::new(cmd), &mut fx);
        let index = self.last_index();
        self.replicate_all(now, &mut fx);
        self.advance_commit(&mut fx);
        (fx, RaftPropose::Appended(index))
    }

    /// True when `b` differs from `a` by at most one server.
    pub fn single_change(a: &[NodeId], b: &[NodeId]) -> bool {
        if b.is_empty() {
            return false;
        }
        let sa: BTreeSet<_> = a.iter().collect();
        let sb: BTreeSet<_> = b.iter().collect();
        sa.symmetric_difference(&sb).count() <= 1
    }

    /// Handles one RPC.
    pub fn on_message(&mut self, from: NodeId, rpc: RaftRpc<O>, now: SimTime) -> RaftEffects<O> {
        let mut fx = RaftEffects::new();
        match rpc {
            RaftRpc::RequestVote {
                term,
                last_index,
                last_term,
            } => self.on_request_vote(from, term, last_index, last_term, now, &mut fx),
            RaftRpc::VoteReply { term, granted } => {
                self.on_vote_reply(from, term, granted, now, &mut fx)
            }
            RaftRpc::Append {
                term,
                prev_index,
                prev_term,
                entries,
                commit,
            } => self.on_append(
                from, term, prev_index, prev_term, entries, commit, now, &mut fx,
            ),
            RaftRpc::AppendReply {
                term,
                success,
                match_index,
                hint_index,
            } => self.on_append_reply(from, term, success, match_index, hint_index, now, &mut fx),
            RaftRpc::InstallSnapshot {
                term,
                last_index,
                last_term,
                members,
                eras,
                data,
            } => self.on_install_snapshot(
                from, term, last_index, last_term, members, eras, data, now, &mut fx,
            ),
            RaftRpc::SnapshotReply { term, last_index } => {
                self.on_snapshot_reply(from, term, last_index, now, &mut fx)
            }
        }
        fx
    }

    /// Advances timers: heartbeats (leader), elections (others).
    pub fn tick(&mut self, now: SimTime) -> RaftEffects<O> {
        let mut fx = RaftEffects::new();
        match self.role {
            RaftRole::Leader => {
                if now.since(self.last_heartbeat) >= self.tun.heartbeat_interval {
                    self.replicate_all(now, &mut fx);
                }
            }
            _ => {
                let members = self.current_members();
                if members.contains(&self.me) && now >= self.election_deadline {
                    self.start_election(now, &mut fx);
                }
            }
        }
        fx
    }

    /// Compacts the log through `upto` (which must be ≤ the delivered
    /// index), storing `data` as the snapshot payload. The returned effects
    /// carry the persistence delta (new snapshot in, dropped entries out).
    pub fn compact(&mut self, upto: Index, data: Vec<u8>) -> RaftEffects<O> {
        let mut fx = RaftEffects::new();
        if upto <= self.snap_index || upto > self.delivered {
            return fx;
        }
        // Fold configuration entries out of the compacted range.
        let mut members = self.snap_members.clone();
        let mut eras = self.snap_eras;
        for i in (self.snap_index + 1)..=upto {
            if let Some((_, c)) = self.entry_at(i) {
                if let Cmd::Reconfigure { members: m } = &**c {
                    members = m.clone();
                    eras += 1;
                }
            }
        }
        let new_term = self.term_at(upto).expect("upto is within the log");
        for i in (self.snap_index + 1)..=upto {
            fx.unpersist.push(log_key(i));
        }
        let drop = (upto - self.snap_index) as usize;
        self.log.drain(..drop);
        self.snap_index = upto;
        self.snap_term = new_term;
        self.snap_members = members;
        self.snap_eras = eras;
        self.snap_data = data;
        self.persist_snapshot(&mut fx);
        fx
    }

    // --- Elections ----------------------------------------------------------

    fn election_timeout(&self) -> SimDuration {
        let jitter_us = if self.tun.election_jitter.is_zero() {
            0
        } else {
            mix64(
                self.me
                    .0
                    .wrapping_mul(131)
                    .wrapping_add(self.election_attempt),
            ) % self.tun.election_jitter.as_micros()
        };
        self.tun.election_timeout + SimDuration::from_micros(jitter_us)
    }

    fn reset_election_deadline(&mut self, now: SimTime) {
        self.election_deadline = now + self.election_timeout();
    }

    fn start_election(&mut self, now: SimTime, fx: &mut RaftEffects<O>) {
        self.election_attempt += 1;
        self.term += 1;
        self.role = RaftRole::Candidate;
        self.voted_for = Some(self.me);
        self.persist_hard_state(fx);
        self.votes.clear();
        self.votes.insert(self.me);
        self.reset_election_deadline(now);
        let (last_index, last_term) = (
            self.last_index(),
            self.term_at(self.last_index()).unwrap_or(0),
        );
        for peer in self.peers() {
            fx.outbound.push((
                peer,
                RaftRpc::RequestVote {
                    term: self.term,
                    last_index,
                    last_term,
                },
            ));
        }
        self.check_votes(now, fx);
    }

    fn peers(&self) -> Vec<NodeId> {
        self.cached_members
            .iter()
            .copied()
            .filter(|&m| m != self.me)
            .collect()
    }

    fn adopt_term(&mut self, term: Term, fx: &mut RaftEffects<O>) {
        if term > self.term {
            self.term = term;
            self.voted_for = None;
            self.persist_hard_state(fx);
            if self.role == RaftRole::Leader {
                fx.lost_leadership = true;
            }
            self.role = RaftRole::Follower;
            self.votes.clear();
        }
    }

    fn on_request_vote(
        &mut self,
        from: NodeId,
        term: Term,
        last_index: Index,
        last_term: Term,
        now: SimTime,
        fx: &mut RaftEffects<O>,
    ) {
        self.adopt_term(term, fx);
        let my_last = self.last_index();
        let my_last_term = self.term_at(my_last).unwrap_or(0);
        let up_to_date =
            last_term > my_last_term || (last_term == my_last_term && last_index >= my_last);
        let granted = term == self.term
            && up_to_date
            && (self.voted_for.is_none() || self.voted_for == Some(from));
        if granted {
            self.voted_for = Some(from);
            self.persist_hard_state(fx);
            self.reset_election_deadline(now);
        }
        fx.outbound.push((
            from,
            RaftRpc::VoteReply {
                term: self.term,
                granted,
            },
        ));
    }

    fn on_vote_reply(
        &mut self,
        from: NodeId,
        term: Term,
        granted: bool,
        now: SimTime,
        fx: &mut RaftEffects<O>,
    ) {
        self.adopt_term(term, fx);
        if self.role != RaftRole::Candidate || term != self.term || !granted {
            return;
        }
        self.votes.insert(from);
        self.check_votes(now, fx);
    }

    fn check_votes(&mut self, now: SimTime, fx: &mut RaftEffects<O>) {
        if self.role == RaftRole::Candidate && self.votes.len() >= self.quorum() {
            self.role = RaftRole::Leader;
            self.leader_hint = Some(self.me);
            fx.became_leader = true;
            self.next_index.clear();
            self.match_index.clear();
            let next = self.last_index() + 1;
            for peer in self.peers() {
                self.next_index.insert(peer, next);
                self.match_index.insert(peer, 0);
            }
            // Commit barrier: a no-op from the new term.
            self.push_entry(self.term, Arc::new(Cmd::Noop), fx);
            self.replicate_all(now, fx);
        }
    }

    // --- Replication ----------------------------------------------------------

    fn replicate_all(&mut self, now: SimTime, fx: &mut RaftEffects<O>) {
        self.last_heartbeat = now;
        for peer in self.peers() {
            self.replicate_one(peer, now, fx);
        }
    }

    /// Minimum spacing between full-snapshot sends to one peer.
    const SNAPSHOT_RESEND: SimDuration = SimDuration::from_millis(500);

    fn replicate_one(&mut self, peer: NodeId, now: SimTime, fx: &mut RaftEffects<O>) {
        let next = *self.next_index.entry(peer).or_insert(self.snap_index + 1);
        if next <= self.snap_index {
            // Throttle: one outstanding snapshot per peer per interval.
            let last_sent = self.snap_sent_at.get(&peer).copied();
            if let Some(at) = last_sent {
                if now.since(at) < Self::SNAPSHOT_RESEND {
                    return;
                }
            }
            self.snap_sent_at.insert(peer, now);
            fx.outbound.push((
                peer,
                RaftRpc::InstallSnapshot {
                    term: self.term,
                    last_index: self.snap_index,
                    last_term: self.snap_term,
                    members: self.snap_members.clone(),
                    eras: self.snap_eras,
                    data: self.snap_data.clone(),
                },
            ));
            // Optimistically assume installation; a reply corrects this.
            self.next_index.insert(peer, self.snap_index + 1);
            return;
        }
        let prev_index = next - 1;
        let Some(prev_term) = self.term_at(prev_index) else {
            // prev fell behind the snapshot between checks.
            self.next_index.insert(peer, self.snap_index);
            return;
        };
        let from = next;
        let to = self.last_index().min(from + self.tun.batch as Index - 1);
        let entries: Vec<(Term, Arc<Cmd<O>>)> = (from..=to)
            .filter_map(|i| self.entry_at(i).cloned())
            .collect();
        // Pipelining: advance next_index optimistically so the next
        // propose ships only new entries; failures rewind it via the
        // reply's hint, losses via the follower's mismatch hint.
        if !entries.is_empty() {
            self.next_index.insert(peer, to + 1);
        }
        fx.outbound.push((
            peer,
            RaftRpc::Append {
                term: self.term,
                prev_index,
                prev_term,
                entries,
                commit: self.commit,
            },
        ));
    }

    #[allow(clippy::too_many_arguments)]
    fn on_append(
        &mut self,
        from: NodeId,
        term: Term,
        prev_index: Index,
        prev_term: Term,
        entries: Vec<(Term, Arc<Cmd<O>>)>,
        commit: Index,
        now: SimTime,
        fx: &mut RaftEffects<O>,
    ) {
        self.adopt_term(term, fx);
        if term < self.term {
            fx.outbound.push((
                from,
                RaftRpc::AppendReply {
                    term: self.term,
                    success: false,
                    match_index: 0,
                    hint_index: self.last_index() + 1,
                },
            ));
            return;
        }
        // A current-term Append asserts leadership.
        if self.role != RaftRole::Follower {
            if self.role == RaftRole::Leader {
                fx.lost_leadership = true;
            }
            self.role = RaftRole::Follower;
        }
        self.leader_hint = Some(from);
        self.reset_election_deadline(now);

        // Consistency check. Indices at or below our snapshot are part of
        // the committed prefix the snapshot covers, so they match by
        // construction (the per-entry loop below skips them).
        let ok = prev_index < self.snap_index
            || match self.term_at(prev_index) {
                Some(t) => t == prev_term,
                None => false,
            };
        if !ok {
            // Either our log is too short (prev beyond it) or the entry at
            // prev conflicts; tell the leader where to resume.
            let hint = (self.last_index() + 1)
                .min(prev_index)
                .max(self.snap_index + 1);
            fx.outbound.push((
                from,
                RaftRpc::AppendReply {
                    term: self.term,
                    success: false,
                    match_index: 0,
                    hint_index: hint,
                },
            ));
            return;
        }
        // Append, truncating conflicts.
        let mut index = prev_index;
        for (t, cmd) in entries {
            index += 1;
            if index <= self.snap_index {
                continue; // covered by our snapshot
            }
            match self.term_at(index) {
                Some(existing) if existing == t => continue, // already have it
                Some(_) => {
                    // Conflict: truncate from here (dropping any cached
                    // config the suffix carried), then append.
                    for i in index..=self.last_index() {
                        fx.unpersist.push(log_key(i));
                    }
                    let keep = (index - self.snap_index - 1) as usize;
                    self.log.truncate(keep);
                    self.recompute_members();
                    self.push_entry(t, cmd, fx);
                }
                None => self.push_entry(t, cmd, fx),
            }
        }
        let match_index = index.max(self.last_index().min(prev_index));
        let new_commit = commit.min(self.last_index());
        if new_commit > self.commit {
            self.commit = new_commit;
            self.deliver(fx);
        }
        fx.outbound.push((
            from,
            RaftRpc::AppendReply {
                term: self.term,
                success: true,
                match_index,
                hint_index: 0,
            },
        ));
    }

    // The arguments mirror the `AppendReply` wire fields one-to-one.
    #[allow(clippy::too_many_arguments)]
    fn on_append_reply(
        &mut self,
        from: NodeId,
        term: Term,
        success: bool,
        match_index: Index,
        hint_index: Index,
        _now: SimTime,
        fx: &mut RaftEffects<O>,
    ) {
        self.adopt_term(term, fx);
        if self.role != RaftRole::Leader || term != self.term {
            return;
        }
        if success {
            let m = self.match_index.entry(from).or_insert(0);
            *m = (*m).max(match_index);
            let next = self.next_index.entry(from).or_insert(match_index + 1);
            *next = (*next).max(match_index + 1);
            self.advance_commit(fx);
            // Keep streaming only if un-sent entries remain (pipelined
            // batches in flight don't need re-sending).
            if *self.next_index.get(&from).expect("just set") <= self.last_index() {
                self.replicate_one(from, _now, fx);
            }
        } else {
            // Rewind to the follower's hint (never forward).
            let current = *self.next_index.entry(from).or_insert(self.snap_index + 1);
            let next = hint_index.max(1).min(current).min(self.last_index() + 1);
            self.next_index.insert(from, next);
            self.replicate_one(from, _now, fx);
        }
    }

    fn advance_commit(&mut self, fx: &mut RaftEffects<O>) {
        let members = self.cached_members.clone();
        let quorum = self.quorum();
        let mut candidate = self.last_index();
        while candidate > self.commit {
            if self.term_at(candidate) == Some(self.term) {
                let mut count = 0;
                for m in &members {
                    let matched = if *m == self.me {
                        self.last_index()
                    } else {
                        self.match_index.get(m).copied().unwrap_or(0)
                    };
                    if matched >= candidate {
                        count += 1;
                    }
                }
                if count >= quorum {
                    break;
                }
            }
            candidate -= 1;
        }
        if candidate > self.commit {
            self.commit = candidate;
            self.deliver(fx);
        }
    }

    fn deliver(&mut self, fx: &mut RaftEffects<O>) {
        self.delivered = self.delivered.max(self.snap_index);
        while self.delivered < self.commit {
            let next = self.delivered + 1;
            let Some((_, cmd)) = self.entry_at(next) else {
                break;
            };
            fx.committed.push((next, cmd.clone()));
            self.delivered = next;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_install_snapshot(
        &mut self,
        from: NodeId,
        term: Term,
        last_index: Index,
        last_term: Term,
        members: Vec<NodeId>,
        eras: u64,
        data: Vec<u8>,
        now: SimTime,
        fx: &mut RaftEffects<O>,
    ) {
        self.adopt_term(term, fx);
        if term < self.term {
            fx.outbound.push((
                from,
                RaftRpc::SnapshotReply {
                    term: self.term,
                    last_index: self.snap_index,
                },
            ));
            return;
        }
        self.leader_hint = Some(from);
        self.reset_election_deadline(now);
        if last_index > self.commit {
            // The whole log is superseded by the snapshot.
            for i in (self.snap_index + 1)..=self.last_index() {
                fx.unpersist.push(log_key(i));
            }
            self.snap_index = last_index;
            self.snap_term = last_term;
            self.snap_members = members;
            self.snap_eras = eras;
            self.snap_data = data.clone();
            self.log.clear();
            self.cached_members = self.snap_members.clone();
            self.commit = last_index;
            self.delivered = last_index;
            fx.installed_snapshot = Some(data);
            self.persist_snapshot(fx);
        }
        fx.outbound.push((
            from,
            RaftRpc::SnapshotReply {
                term: self.term,
                last_index: self.snap_index,
            },
        ));
    }

    fn on_snapshot_reply(
        &mut self,
        from: NodeId,
        term: Term,
        last_index: Index,
        now: SimTime,
        fx: &mut RaftEffects<O>,
    ) {
        self.adopt_term(term, fx);
        if self.role != RaftRole::Leader || term != self.term {
            return;
        }
        // The peer answered: the outstanding-snapshot slot is free again.
        self.snap_sent_at.remove(&from);
        let next = self.next_index.entry(from).or_insert(last_index + 1);
        *next = (*next).max(last_index + 1);
        let m = self.match_index.entry(from).or_insert(0);
        *m = (*m).max(last_index);
        if *self.next_index.get(&from).expect("just set") <= self.last_index() {
            self.replicate_one(from, now, fx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// One node's committed prefix as observed by the harness.
    type CommitLog = Vec<(Index, Arc<Cmd<u64>>)>;

    /// Lossless in-memory harness. `stores` mirrors what each node's host
    /// would hold in stable storage (applying `persist` / `unpersist`).
    struct Net {
        cores: BTreeMap<NodeId, RaftCore<u64>>,
        inbox: VecDeque<(NodeId, NodeId, RaftRpc<u64>)>,
        committed: BTreeMap<NodeId, CommitLog>,
        stores: BTreeMap<NodeId, BTreeMap<String, Vec<u8>>>,
        cut: BTreeSet<NodeId>,
        now: SimTime,
    }

    impl Net {
        fn new(n: u64) -> Self {
            let members: Vec<NodeId> = (0..n).map(NodeId).collect();
            let cfg = StaticConfig::new(members.clone());
            let cores: BTreeMap<NodeId, RaftCore<u64>> = members
                .iter()
                .map(|&m| {
                    (
                        m,
                        RaftCore::new(m, cfg.clone(), SimTime::ZERO, RaftTunables::default()),
                    )
                })
                .collect();
            let stores = cores
                .iter()
                .map(|(&m, c)| (m, c.bootstrap_persist().into_iter().collect()))
                .collect();
            Net {
                cores,
                inbox: VecDeque::new(),
                committed: BTreeMap::new(),
                stores,
                cut: BTreeSet::new(),
                now: SimTime::ZERO,
            }
        }

        fn absorb(&mut self, from: NodeId, fx: RaftEffects<u64>) {
            for (to, rpc) in fx.outbound {
                self.inbox.push_back((from, to, rpc));
            }
            self.committed.entry(from).or_default().extend(fx.committed);
            let store = self.stores.entry(from).or_default();
            for (key, value) in fx.persist {
                store.insert(key, value);
            }
            for key in fx.unpersist {
                store.remove(&key);
            }
        }

        fn advance(&mut self, d: SimDuration) {
            self.now += d;
            let ids: Vec<NodeId> = self.cores.keys().copied().collect();
            for id in ids {
                if self.cut.contains(&id) {
                    continue;
                }
                let fx = self.cores.get_mut(&id).unwrap().tick(self.now);
                self.absorb(id, fx);
            }
            while let Some((from, to, rpc)) = self.inbox.pop_front() {
                if self.cut.contains(&from) || self.cut.contains(&to) {
                    continue;
                }
                if let Some(core) = self.cores.get_mut(&to) {
                    let fx = core.on_message(from, rpc, self.now);
                    self.absorb(to, fx);
                }
            }
        }

        fn elect(&mut self) -> NodeId {
            for _ in 0..1000 {
                self.advance(SimDuration::from_millis(10));
                if let Some(l) = self.leader() {
                    return l;
                }
            }
            panic!("no raft leader");
        }

        fn leader(&self) -> Option<NodeId> {
            self.cores
                .iter()
                .filter(|(id, c)| !self.cut.contains(id) && c.is_leader())
                .map(|(&id, _)| id)
                .next()
        }

        fn propose(&mut self, cmd: Cmd<u64>) -> RaftPropose {
            let l = self.leader().expect("leader");
            let (fx, res) = self.cores.get_mut(&l).unwrap().propose(cmd, self.now);
            self.absorb(l, fx);
            self.advance(SimDuration::from_millis(1));
            res
        }

        fn app_values(&self, id: NodeId) -> Vec<u64> {
            self.committed
                .get(&id)
                .map(|v| {
                    v.iter()
                        .filter_map(|(_, c)| match &**c {
                            Cmd::App { op, .. } => Some(*op),
                            _ => None,
                        })
                        .collect()
                })
                .unwrap_or_default()
        }
    }

    fn app(op: u64) -> Cmd<u64> {
        Cmd::App {
            client: NodeId(100),
            seq: op,
            op,
        }
    }

    #[test]
    fn elects_exactly_one_leader() {
        let mut net = Net::new(3);
        net.elect();
        assert_eq!(net.cores.values().filter(|c| c.is_leader()).count(), 1);
    }

    #[test]
    fn commits_in_order_on_all_replicas() {
        let mut net = Net::new(3);
        net.elect();
        for i in 1..=5 {
            assert!(matches!(net.propose(app(i)), RaftPropose::Appended(_)));
        }
        net.advance(SimDuration::from_millis(100));
        for id in net.cores.keys().copied().collect::<Vec<_>>() {
            assert_eq!(net.app_values(id), vec![1, 2, 3, 4, 5], "{id}");
        }
    }

    #[test]
    fn leader_crash_preserves_committed_prefix() {
        let mut net = Net::new(3);
        let l1 = net.elect();
        for i in 1..=3 {
            net.propose(app(i));
        }
        net.advance(SimDuration::from_millis(100));
        net.cut.insert(l1);
        let mut l2 = l1;
        for _ in 0..500 {
            net.advance(SimDuration::from_millis(10));
            if let Some(l) = net.leader() {
                l2 = l;
                break;
            }
        }
        assert_ne!(l2, l1);
        net.propose(app(9));
        net.advance(SimDuration::from_millis(200));
        let vals = net.app_values(l2);
        assert!(vals.starts_with(&[1, 2, 3]), "{vals:?}");
        assert!(vals.contains(&9));
    }

    #[test]
    fn single_change_rule() {
        let a = [NodeId(1), NodeId(2), NodeId(3)];
        assert!(RaftCore::<u64>::single_change(&a, &a));
        assert!(RaftCore::<u64>::single_change(
            &a,
            &[NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        ));
        assert!(RaftCore::<u64>::single_change(&a, &[NodeId(1), NodeId(2)]));
        assert!(!RaftCore::<u64>::single_change(
            &a,
            &[NodeId(1), NodeId(4), NodeId(5)]
        ));
        assert!(!RaftCore::<u64>::single_change(&a, &[]));
    }

    #[test]
    fn reconfigure_is_refused_while_one_is_pending() {
        let mut net = Net::new(3);
        let l = net.elect();
        // Block replication so the config entry stays uncommitted.
        let peers: Vec<NodeId> = net.cores.keys().copied().filter(|&n| n != l).collect();
        for p in &peers {
            net.cut.insert(*p);
        }
        let (fx, r1) = net.cores.get_mut(&l).unwrap().propose(
            Cmd::Reconfigure {
                members: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            },
            net.now,
        );
        net.absorb(l, fx);
        assert!(matches!(r1, RaftPropose::Appended(_)));
        let (fx, r2) = net.cores.get_mut(&l).unwrap().propose(
            Cmd::Reconfigure {
                members: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(4)],
            },
            net.now,
        );
        net.absorb(l, fx);
        assert_eq!(r2, RaftPropose::BadReconfigure);
    }

    #[test]
    fn membership_add_takes_effect_and_commits() {
        let mut net = Net::new(3);
        net.elect();
        // Add node 3.
        let joiner = NodeId(3);
        net.cores
            .insert(joiner, RaftCore::blank(joiner, RaftTunables::default()));
        let res = net.propose(Cmd::Reconfigure {
            members: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
        });
        assert!(matches!(res, RaftPropose::Appended(_)));
        net.advance(SimDuration::from_millis(200));
        // The joiner received the log and knows the config.
        let members = net.cores[&joiner].current_members();
        assert!(members.contains(&joiner), "{members:?}");
        // And further commands reach it.
        net.propose(app(7));
        net.advance(SimDuration::from_millis(200));
        assert!(net.app_values(joiner).contains(&7));
    }

    #[test]
    fn compaction_and_snapshot_install() {
        let mut net = Net::new(3);
        let l = net.elect();
        for i in 1..=10 {
            net.propose(app(i));
        }
        net.advance(SimDuration::from_millis(100));
        // Compact the leader aggressively, then add a blank joiner: it must
        // be brought up through InstallSnapshot.
        {
            let core = net.cores.get_mut(&l).unwrap();
            let upto = core.delivered;
            core.compact(upto, vec![9, 9, 9]);
            assert!(core.log_len() < 10);
        }
        let joiner = NodeId(3);
        net.cores
            .insert(joiner, RaftCore::blank(joiner, RaftTunables::default()));
        net.propose(Cmd::Reconfigure {
            members: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
        });
        net.advance(SimDuration::from_millis(300));
        let j = &net.cores[&joiner];
        assert!(j.snap_index > 0, "snapshot must have been installed");
        assert_eq!(j.snap_data, vec![9, 9, 9]);
        assert!(j.current_members().contains(&joiner));
    }

    #[test]
    fn recovery_restores_term_vote_and_log() {
        let mut net = Net::new(3);
        net.elect();
        for i in 1..=4 {
            net.propose(app(i));
        }
        net.advance(SimDuration::from_millis(100));
        // Crash a follower and rebuild it purely from its persisted state.
        let victim = net
            .cores
            .iter()
            .find(|(_, c)| !c.is_leader())
            .map(|(&id, _)| id)
            .unwrap();
        let (term, last) = {
            let c = &net.cores[&victim];
            (c.term(), c.log_len() as u64 + c.snapshot_index())
        };
        let store = net.stores[&victim].clone();
        let r = RaftCore::<u64>::recover(victim, net.now, RaftTunables::default(), store);
        assert_eq!(r.term(), term);
        assert_eq!(r.role(), RaftRole::Follower);
        assert_eq!(r.log_len() as u64 + r.snapshot_index(), last);
        assert_eq!(r.current_members(), net.cores[&victim].current_members());
        // Commit index is volatile: it restarts at the snapshot boundary and
        // is re-learned from the leader.
        assert_eq!(r.delivered_index(), r.snapshot_index());
        // Plugged back into the cluster, the recovered node re-delivers the
        // full committed prefix plus new traffic.
        net.cores.insert(victim, r);
        net.committed.remove(&victim);
        net.propose(app(9));
        net.advance(SimDuration::from_millis(200));
        let vals = net.app_values(victim);
        assert_eq!(vals, vec![1, 2, 3, 4, 9], "{vals:?}");
    }

    #[test]
    fn recovered_node_does_not_double_vote() {
        let cfg = StaticConfig::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        let mut a = RaftCore::<u64>::new(NodeId(0), cfg, SimTime::ZERO, RaftTunables::default());
        let mut store: BTreeMap<String, Vec<u8>> = a.bootstrap_persist().into_iter().collect();
        let vote = |fx: &RaftEffects<u64>| match fx.outbound.first() {
            Some((_, RaftRpc::VoteReply { granted, .. })) => Some(*granted),
            _ => None,
        };
        let fx = a.on_message(
            NodeId(1),
            RaftRpc::RequestVote {
                term: 5,
                last_index: 0,
                last_term: 0,
            },
            SimTime::ZERO,
        );
        assert_eq!(vote(&fx), Some(true));
        for (k, v) in fx.persist {
            store.insert(k, v);
        }
        // Restart. The vote for candidate 1 in term 5 must survive: an
        // equally up-to-date rival in the same term is refused, while the
        // original candidate's retransmit is re-granted.
        let mut b =
            RaftCore::<u64>::recover(NodeId(0), SimTime::ZERO, RaftTunables::default(), store);
        assert_eq!(b.term(), 5);
        let fx = b.on_message(
            NodeId(2),
            RaftRpc::RequestVote {
                term: 5,
                last_index: 99,
                last_term: 5,
            },
            SimTime::ZERO,
        );
        assert_eq!(vote(&fx), Some(false));
        let fx = b.on_message(
            NodeId(1),
            RaftRpc::RequestVote {
                term: 5,
                last_index: 0,
                last_term: 0,
            },
            SimTime::ZERO,
        );
        assert_eq!(vote(&fx), Some(true));
    }

    #[test]
    fn recovery_after_compaction_uses_snapshot_plus_suffix() {
        let mut net = Net::new(3);
        let l = net.elect();
        for i in 1..=10 {
            net.propose(app(i));
        }
        net.advance(SimDuration::from_millis(100));
        {
            let core = net.cores.get_mut(&l).unwrap();
            let upto = core.delivered;
            let cfx = core.compact(upto, vec![7, 7]);
            net.absorb(l, cfx);
        }
        let store = net.stores[&l].clone();
        let r = RaftCore::<u64>::recover(l, net.now, RaftTunables::default(), store);
        assert!(r.snapshot_index() > 0);
        assert_eq!(r.snapshot_data(), &[7, 7]);
        assert_eq!(
            r.log_len() as u64 + r.snapshot_index(),
            net.cores[&l].log_len() as u64 + net.cores[&l].snapshot_index()
        );
    }

    #[test]
    fn blank_nodes_never_campaign() {
        let mut net = Net::new(1);
        let blank = NodeId(9);
        net.cores
            .insert(blank, RaftCore::blank(blank, RaftTunables::default()));
        net.advance(SimDuration::from_secs(5));
        assert_eq!(net.cores[&blank].role(), RaftRole::Follower);
        assert_eq!(net.cores[&blank].term(), net.cores[&blank].term());
    }
}
