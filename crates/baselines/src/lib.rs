//! # baselines — comparison systems for the reconfigurable-SMR reproduction
//!
//! Two systems the composed machine (`rsmr-core`) is evaluated against:
//!
//! * [`stw`] — **stop-the-world** reconfiguration over the *same* building
//!   blocks: drain the old instance, transfer state, block on acks, then
//!   start the successor. The naive composition the brief announcement
//!   improves upon; speaks the same wire language as `rsmr-core`, so the
//!   same clients and admin drive it.
//! * [`raft`] — **raft-lite**, a Raft-style natively reconfigurable SMR
//!   with single-server membership changes and snapshot install; the design
//!   dominating open-source practice.

pub mod harness;
pub mod raft;
pub mod stw;

pub use harness::{RaftWorld, StwWorld};
pub use raft::{RaftAdmin, RaftClient, RaftNode, RaftTunables};
pub use stw::{StwNode, StwTunables};
