//! The **stop-the-world** reconfiguration baseline.
//!
//! Same building block, same state transfer machinery, but the naive
//! composition discipline the brief announcement argues against:
//!
//! 1. on a reconfiguration request the leader **stops admitting** client
//!    commands and *drains* the current instance (waits until every
//!    in-flight proposal commits and applies);
//! 2. only then does it append the epoch-closing `Reconfigure`;
//! 3. it **pushes** the base state to every joining member and blocks on
//!    their acks;
//! 4. only after every ack does it broadcast the start signal; replicas
//!    then switch instances, and the successor runs an ordinary election.
//!
//! Client requests arriving anywhere in (1)–(4) are bounced. The service
//! interruption window is therefore `drain + transfer + ack + election` —
//! exactly what experiments E2–E5 measure against the speculative
//! composition.
//!
//! The node speaks the same wire language as the speculative composition
//! ([`RsmrMsg`]), so the clients and the admin from `rsmr-core` drive both
//! systems unchanged.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use consensus::{MultiPaxos, PaxosTunables, ProposeOutcome, Slot, StaticConfig};
use rsmr_core::chain::{ConfigChain, Epoch};
use rsmr_core::command::{BatchEntry, Cmd};
use rsmr_core::messages::RsmrMsg;
use rsmr_core::session::{SessionDecision, SessionTable};
use rsmr_core::state_machine::StateMachine;
use rsmr_core::transfer::BaseState;
use simnet::{Actor, Context, DomainEvent, NodeId, SimDuration, SimTime, Timer};

/// Knobs of the stop-the-world baseline.
#[derive(Clone, Debug)]
pub struct StwTunables {
    /// Building-block tunables.
    pub paxos: PaxosTunables,
    /// Timer pump interval.
    pub tick: SimDuration,
    /// Retry interval for unacked base-state pushes.
    pub push_retry: SimDuration,
    /// How long a replaced instance keeps serving catch-up.
    pub retire_grace: SimDuration,
}

impl Default for StwTunables {
    fn default() -> Self {
        StwTunables {
            paxos: PaxosTunables::default(),
            tick: SimDuration::from_millis(5),
            push_retry: SimDuration::from_millis(100),
            retire_grace: SimDuration::from_secs(2),
        }
    }
}

struct Instance<O: Clone + std::fmt::Debug + PartialEq + simnet::wire::Wire + 'static> {
    paxos: MultiPaxos<Cmd<O>>,
    retire_at: Option<SimTime>,
}

/// The leader-driven handoff to the successor epoch.
struct Handoff {
    epoch: Epoch,
    cfg: StaticConfig,
    base: Vec<u8>,
    /// Joining members that have not acked the base push yet.
    awaiting: BTreeSet<NodeId>,
    last_push: SimTime,
    started: bool,
}

/// A replica of the stop-the-world reconfigurable machine.
pub struct StwNode<S: StateMachine> {
    me: NodeId,
    tun: StwTunables,
    chain: Option<ConfigChain>,
    instances: BTreeMap<Epoch, Instance<S::Op>>,
    /// The epoch this replica currently executes.
    current: Option<Epoch>,
    sm: S,
    sessions: SessionTable<S::Output>,
    /// Next slot of `current` to apply.
    applied_next: Slot,
    /// Committed-but-unapplied entries of `current` (out-of-creation-order
    /// arrivals after a switch).
    buffer: BTreeMap<Slot, Arc<Cmd<S::Op>>>,
    waiting: BTreeMap<(NodeId, u64), ()>,
    /// Leader-side: reconfiguration accepted, draining before proposing.
    draining: Option<(Vec<NodeId>, NodeId)>,
    /// The admin to notify when the pending reconfiguration goes live.
    pending_admin: Option<NodeId>,
    /// Post-close handoff state (every member tracks it; the old epoch's
    /// leader drives it).
    handoff: Option<Handoff>,
    /// Joining member: base installed, waiting for the start signal.
    base_installed: bool,
    /// Start signals received for epochs this replica has not finished
    /// applying up to yet (a lagging follower must drain its current epoch
    /// through the close before switching, or it would lose suffix
    /// commands).
    pending_starts: BTreeMap<Epoch, StaticConfig>,
    applied_count: u64,
    /// Highest epoch that has applied a command — the watermark behind the
    /// `FirstCommit` event ending each handoff gap.
    commit_seen_epoch: Option<Epoch>,
    /// Queue of commands proposed but discarded by a close; kept for
    /// accounting only.
    _parked: VecDeque<(NodeId, u64)>,
}

impl<S: StateMachine + Default> StwNode<S> {
    /// Creates a genesis member.
    pub fn genesis(me: NodeId, initial: StaticConfig, tun: StwTunables) -> Self {
        Self::genesis_with(me, initial, tun, S::default())
    }

    /// Creates a joining member that waits for a pushed base state.
    pub fn joining(me: NodeId, tun: StwTunables) -> Self {
        Self::bare(me, tun, S::default())
    }
}

impl<S: StateMachine> StwNode<S> {
    /// Creates a genesis member with an explicit initial application state.
    pub fn genesis_with(me: NodeId, initial: StaticConfig, tun: StwTunables, sm: S) -> Self {
        assert!(initial.contains(me));
        let mut node = Self::bare(me, tun, sm);
        node.chain = Some(ConfigChain::genesis(initial.clone()));
        node.current = Some(Epoch::ZERO);
        node.instances.insert(
            Epoch::ZERO,
            Instance {
                paxos: MultiPaxos::new(me, initial, SimTime::ZERO, node.tun.paxos.clone()),
                retire_at: None,
            },
        );
        node
    }

    fn bare(me: NodeId, tun: StwTunables, sm: S) -> Self {
        StwNode {
            me,
            tun,
            chain: None,
            instances: BTreeMap::new(),
            current: None,
            sm,
            sessions: SessionTable::new(),
            applied_next: Slot::ZERO,
            buffer: BTreeMap::new(),
            waiting: BTreeMap::new(),
            draining: None,
            pending_admin: None,
            handoff: None,
            base_installed: false,
            pending_starts: BTreeMap::new(),
            applied_count: 0,
            commit_seen_epoch: None,
            _parked: VecDeque::new(),
        }
    }

    /// The epoch this replica executes, if any.
    pub fn current_epoch(&self) -> Option<Epoch> {
        self.current
    }

    /// True while a reconfiguration blocks the service at this replica.
    pub fn is_blocked(&self) -> bool {
        self.draining.is_some() || self.handoff.as_ref().map(|h| !h.started).unwrap_or(false)
    }

    /// Read access to the application state.
    pub fn state_machine(&self) -> &S {
        &self.sm
    }

    /// Commands applied by this replica.
    pub fn applied_count(&self) -> u64 {
        self.applied_count
    }

    /// True if this replica leads its current instance.
    pub fn is_current_leader(&self) -> bool {
        self.current
            .and_then(|e| self.instances.get(&e))
            .map(|i| i.paxos.is_leader())
            .unwrap_or(false)
    }

    fn members(&self) -> Vec<NodeId> {
        self.chain
            .as_ref()
            .map(|c| c.latest_config().members().to_vec())
            .unwrap_or_default()
    }

    fn process_effects(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        epoch: Epoch,
        fx: consensus::Effects<Cmd<S::Op>>,
    ) {
        for (to, inner) in fx.outbound {
            ctx.send(to, RsmrMsg::Paxos { epoch, inner });
        }
        if fx.became_leader {
            ctx.metrics().incr("stw.leader_elections", 1);
        }
        for slot in fx.proposed {
            ctx.emit_event(DomainEvent::CmdProposed {
                epoch: epoch.0,
                slot: slot.0,
            });
        }
        if Some(epoch) == self.current && !fx.committed.is_empty() {
            for (slot, cmd) in fx.committed {
                ctx.emit_event(DomainEvent::CmdCommitted {
                    epoch: epoch.0,
                    slot: slot.0,
                });
                self.buffer.insert(slot, cmd);
            }
            self.drain_applies(ctx);
        }
    }

    fn drain_applies(&mut self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>) {
        while let Some(cmd) = self.buffer.remove(&self.applied_next) {
            let slot = self.applied_next;
            self.applied_next = self.applied_next.next();
            match &*cmd {
                Cmd::Noop => {}
                Cmd::App { client, seq, op } => {
                    self.note_first_commit(ctx, slot);
                    self.apply_app(ctx, slot, *client, *seq, op);
                }
                Cmd::Batch { entries } => {
                    // Batch-aware close: apply the prefix before the first
                    // intra-batch `Reconfigure`, then close there. stw
                    // drops the tail (clients retransmit), matching its
                    // slot-granular prefix rule below.
                    let close = entries
                        .iter()
                        .position(|e| matches!(e, BatchEntry::Reconfigure { .. }));
                    let prefix_end = close.unwrap_or(entries.len());
                    if prefix_end > 0 {
                        self.note_first_commit(ctx, slot);
                    }
                    for entry in &entries[..prefix_end] {
                        if let BatchEntry::App { client, seq, op } = entry {
                            self.apply_app(ctx, slot, *client, *seq, op);
                        }
                    }
                    if let Some(idx) = close {
                        let BatchEntry::Reconfigure { members } = &entries[idx] else {
                            unreachable!("position() found a Reconfigure");
                        };
                        let members = members.clone();
                        self.on_close(ctx, slot, members);
                        self.buffer.clear();
                        break;
                    }
                }
                Cmd::Reconfigure { members } => {
                    let members = members.clone();
                    self.on_close(ctx, slot, members);
                    // Prefix rule: nothing after the first close is applied.
                    self.buffer.clear();
                    break;
                }
            }
        }
    }

    /// Emits `FirstCommit` the first time an application command applies in
    /// the current epoch (epochs only move forward, so one watermark
    /// suffices).
    fn note_first_commit(&mut self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>, slot: Slot) {
        let Some(epoch) = self.current else { return };
        if self.commit_seen_epoch.is_none_or(|e| e < epoch) {
            self.commit_seen_epoch = Some(epoch);
            ctx.emit_event(DomainEvent::FirstCommit {
                epoch: epoch.0,
                slot: slot.0,
            });
        }
    }

    fn apply_app(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        slot: Slot,
        client: NodeId,
        seq: u64,
        op: &S::Op,
    ) {
        let output = match self.sessions.check(client, seq) {
            SessionDecision::Fresh => {
                let out = self.sm.apply(op);
                self.sessions.record(client, seq, out.clone());
                self.applied_count += 1;
                ctx.metrics().incr("stw.applied", 1);
                ctx.emit_event(DomainEvent::CmdApplied {
                    client,
                    seq,
                    epoch: self.current.map(|e| e.0).unwrap_or(0),
                    slot: slot.0,
                });
                let now = ctx.now();
                ctx.metrics().timeline_push("rsmr.commits", now, 1.0);
                out
            }
            SessionDecision::Duplicate(out) => out,
            SessionDecision::Stale => {
                self.waiting.remove(&(client, seq));
                return;
            }
        };
        if self.waiting.remove(&(client, seq)).is_some() {
            let members = self.members();
            ctx.send(
                client,
                RsmrMsg::Reply {
                    seq,
                    output,
                    members,
                },
            );
        }
    }

    /// The close command applied: freeze, capture the base, begin (or
    /// await) the leader-driven handoff.
    fn on_close(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        slot: Slot,
        members: Vec<NodeId>,
    ) {
        let old = self.current.expect("applying implies a current epoch");
        let successor = old.next();
        let cfg = StaticConfig::new(members);
        self.chain
            .as_mut()
            .expect("executing nodes have a chain")
            .append(successor, cfg.clone());
        // The control deliberately stays monolithic: every page is
        // encoded fresh at seal time and shipped as one blob — the cost
        // the chunked/incremental composition is measured against.
        let base = BaseState::<S::Output> {
            epoch: successor,
            pages: (0..self.sm.snapshot_pages())
                .map(|i| Arc::new(self.sm.snapshot_page(i)))
                .collect(),
            sessions: self.sessions.clone(),
            chain: self.chain.clone().expect("just used"),
        };
        let joiners: BTreeSet<NodeId> = cfg
            .members()
            .iter()
            .copied()
            .filter(|&m| {
                !self
                    .chain
                    .as_ref()
                    .and_then(|c| c.config(old))
                    .map(|c| c.contains(m))
                    .unwrap_or(false)
            })
            .collect();
        let base_bytes = base.encode_bytes();
        ctx.metrics()
            .incr("transfer.encode_bytes", base_bytes.len() as u64);
        self.handoff = Some(Handoff {
            epoch: successor,
            cfg,
            base: base_bytes,
            awaiting: joiners,
            last_push: SimTime::ZERO,
            started: false,
        });
        self.draining = None;
        let now = ctx.now();
        ctx.metrics().incr("stw.epochs_closed", 1);
        ctx.metrics()
            .timeline_push("rsmr.epoch_closed", now, old.0 as f64);
        ctx.emit_event(DomainEvent::EpochSealed {
            epoch: old.0,
            seal_slot: slot.0,
        });
        self.pump_handoff(ctx);
        self.maybe_start(ctx);
    }

    /// Leader-only: push bases, collect acks, broadcast the start signal.
    fn pump_handoff(&mut self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>) {
        let old = match self.current {
            Some(e) => e,
            None => return,
        };
        let am_leader = self
            .instances
            .get(&old)
            .map(|i| i.paxos.is_leader())
            .unwrap_or(false);
        let Some(handoff) = &mut self.handoff else {
            return;
        };
        if handoff.started || !am_leader {
            return;
        }
        if !handoff.awaiting.is_empty() {
            // The retransmit timeout must scale with the blob: a fixed
            // interval shorter than the blob's own wire time would queue
            // duplicate multi-megabyte copies behind the egress port long
            // before the first copy can possibly be acked. One `push_retry`
            // per 64 KiB models a pessimistic transport floor (~640 KB/s at
            // the 100 ms default) while keeping small-state retries prompt.
            let units = 1 + handoff.base.len() as u64 / (64 * 1024);
            let timeout = SimDuration::from_micros(self.tun.push_retry.as_micros() * units);
            if ctx.now().since(handoff.last_push) >= timeout || handoff.last_push == SimTime::ZERO {
                handoff.last_push = ctx.now();
                for &m in handoff.awaiting.iter() {
                    ctx.metrics()
                        .incr("rsmr.transfer_bytes", handoff.base.len() as u64);
                    ctx.emit_event(DomainEvent::TransferServed {
                        epoch: handoff.epoch.0,
                        to: m,
                        bytes: handoff.base.len() as u64,
                    });
                    ctx.send(
                        m,
                        RsmrMsg::TransferReply {
                            epoch: handoff.epoch,
                            base: Some(handoff.base.clone()),
                        },
                    );
                }
            }
            return;
        }
        // Every joiner installed the base: start the successor everywhere.
        handoff.started = true;
        let epoch = handoff.epoch;
        let members = handoff.cfg.members().to_vec();
        for &m in &members {
            if m != self.me {
                ctx.send(
                    m,
                    RsmrMsg::Activate {
                        epoch,
                        members: members.clone(),
                    },
                );
            }
        }
        if let Some(admin) = self.pending_admin.take() {
            ctx.send(
                admin,
                RsmrMsg::ReconfigureReply {
                    epoch,
                    ok: true,
                    leader: None,
                },
            );
        }
        self.start_successor(ctx, epoch);
    }

    /// Switch execution to the successor instance.
    fn start_successor(&mut self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>, epoch: Epoch) {
        let Some(handoff) = self.handoff.take() else {
            return;
        };
        debug_assert_eq!(handoff.epoch, epoch);
        if let Some(old) = self.current.take() {
            if let Some(inst) = self.instances.get_mut(&old) {
                inst.retire_at = Some(ctx.now() + self.tun.retire_grace);
            }
        }
        if handoff.cfg.contains(self.me) {
            self.instances.entry(epoch).or_insert_with(|| Instance {
                paxos: MultiPaxos::new(
                    self.me,
                    handoff.cfg.clone(),
                    ctx.now(),
                    self.tun.paxos.clone(),
                ),
                retire_at: None,
            });
            self.current = Some(epoch);
        } else {
            self.current = None; // removed from service
        }
        self.applied_next = Slot::ZERO;
        self.buffer.clear();
        self.waiting.clear(); // bounced clients will retransmit
        let now = ctx.now();
        ctx.metrics().incr("stw.epochs_started", 1);
        ctx.metrics()
            .timeline_push("rsmr.epoch_finalized", now, epoch.0 as f64);
        ctx.emit_event(DomainEvent::Anchored { epoch: epoch.0 });
    }

    fn handle_request(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        client: NodeId,
        seq: u64,
        op: S::Op,
    ) {
        match self.sessions.check(client, seq) {
            SessionDecision::Duplicate(output) => {
                let members = self.members();
                ctx.send(
                    client,
                    RsmrMsg::Reply {
                        seq,
                        output,
                        members,
                    },
                );
                return;
            }
            SessionDecision::Stale => return,
            SessionDecision::Fresh => {}
        }
        // The whole point of this baseline: reconfiguration blocks service.
        if self.is_blocked() {
            ctx.metrics().incr("stw.bounced_requests", 1);
            let members = self.members();
            ctx.send(
                client,
                RsmrMsg::Redirect {
                    seq,
                    leader: None,
                    members,
                },
            );
            return;
        }
        let Some(current) = self.current else {
            return;
        };
        let inst = self.instances.get_mut(&current).expect("current exists");
        let (fx, outcome) = inst.paxos.propose(Cmd::App { client, seq, op }, ctx.now());
        match outcome {
            ProposeOutcome::Accepted => {
                self.waiting.insert((client, seq), ());
            }
            ProposeOutcome::NotLeader(leader) => {
                let members = self.members();
                ctx.send(
                    client,
                    RsmrMsg::Redirect {
                        seq,
                        leader,
                        members,
                    },
                );
            }
        }
        self.process_effects(ctx, current, fx);
    }

    fn handle_reconfigure(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        admin: NodeId,
        members: Vec<NodeId>,
    ) {
        let Some(current) = self.current else { return };
        if members.is_empty() {
            ctx.send(
                admin,
                RsmrMsg::ReconfigureReply {
                    epoch: current,
                    ok: false,
                    leader: None,
                },
            );
            return;
        }
        let requested = StaticConfig::new(members.clone());
        if self
            .chain
            .as_ref()
            .map(|c| c.latest_config() == &requested)
            .unwrap_or(false)
        {
            let epoch = self.chain.as_ref().expect("checked").latest_epoch();
            ctx.send(
                admin,
                RsmrMsg::ReconfigureReply {
                    epoch,
                    ok: true,
                    leader: None,
                },
            );
            return;
        }
        if self.is_blocked() {
            ctx.send(
                admin,
                RsmrMsg::ReconfigureReply {
                    epoch: current,
                    ok: false,
                    leader: Some(self.me),
                },
            );
            return;
        }
        let inst = self.instances.get(&current).expect("current exists");
        if !inst.paxos.is_leader() {
            let hint = inst.paxos.leader_hint();
            ctx.send(
                admin,
                RsmrMsg::ReconfigureReply {
                    epoch: current,
                    ok: false,
                    leader: hint,
                },
            );
            return;
        }
        // Enter the drain phase: stop admitting, wait for in-flight
        // proposals to finish, then append the close command.
        self.draining = Some((members, admin));
        self.pending_admin = Some(admin);
        let now = ctx.now();
        ctx.metrics().incr("stw.reconfigs_accepted", 1);
        ctx.metrics()
            .timeline_push("rsmr.reconfig_proposed", now, current.0 as f64);
        ctx.emit_event(DomainEvent::ReconfigProposed { epoch: current.0 });
        self.try_finish_drain(ctx);
    }

    fn try_finish_drain(&mut self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>) {
        let Some(current) = self.current else { return };
        let Some((members, _admin)) = self.draining.clone() else {
            return;
        };
        let drained = {
            let inst = self.instances.get(&current).expect("current exists");
            inst.paxos.is_leader()
                && inst.paxos.inflight_len() == 0
                && inst.paxos.pending_len() == 0
                && inst.paxos.accum_len() == 0
                && inst.paxos.chosen_upto() == self.applied_next
        };
        if !drained {
            return;
        }
        let inst = self.instances.get_mut(&current).expect("current exists");
        let (fx, outcome) = inst.paxos.propose(Cmd::Reconfigure { members }, ctx.now());
        if let ProposeOutcome::NotLeader(_) = outcome {
            // Lost leadership between checks; the admin will retry.
            self.draining = None;
            self.pending_admin = None;
        }
        self.process_effects(ctx, current, fx);
    }

    fn handle_activate(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        epoch: Epoch,
        members: Vec<NodeId>,
    ) {
        if self.current.map(|c| c >= epoch).unwrap_or(false) {
            return; // already switched
        }
        let cfg = StaticConfig::new(members);
        // A joiner with an installed base starts the activated epoch
        // directly: its base *is* the epoch's initial state.
        if self.current.is_none() {
            if !self.base_installed {
                return;
            }
            self.handoff = Some(Handoff {
                epoch,
                cfg,
                base: Vec::new(),
                awaiting: BTreeSet::new(),
                last_push: ctx.now(),
                started: true,
            });
            self.start_successor(ctx, epoch);
            return;
        }
        // An existing member: record the start signal and switch only once
        // the close has been applied locally (otherwise suffix commands of
        // the current epoch would be lost).
        self.pending_starts.insert(epoch, cfg);
        self.maybe_start(ctx);
    }

    /// Switches to the successor if its close has been applied locally and
    /// its start signal has arrived.
    fn maybe_start(&mut self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>) {
        let Some(h) = &mut self.handoff else { return };
        if !h.started {
            if self.pending_starts.remove(&h.epoch).is_none() {
                return;
            }
            h.started = true;
        }
        let epoch = h.epoch;
        self.pending_starts.retain(|&e, _| e > epoch);
        self.start_successor(ctx, epoch);
    }

    fn handle_pushed_base(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        from: NodeId,
        epoch: Epoch,
        bytes: Vec<u8>,
    ) {
        // Only joiners (no current instance) install pushed bases.
        if self.current.is_some() {
            ctx.send(from, RsmrMsg::TransferAck { epoch });
            return;
        }
        if !self.base_installed {
            let Some(base) = BaseState::<S::Output>::decode_bytes(&bytes) else {
                return;
            };
            let Some(sm) = S::restore_pages(&base.pages) else {
                return;
            };
            self.sm = sm;
            self.sessions = base.sessions.clone();
            self.chain = Some(base.chain.clone());
            self.base_installed = true;
            ctx.metrics().incr("stw.bases_installed", 1);
        }
        ctx.send(from, RsmrMsg::TransferAck { epoch });
    }

    fn handle_ack(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        from: NodeId,
        epoch: Epoch,
    ) {
        if let Some(h) = &mut self.handoff {
            if h.epoch == epoch {
                h.awaiting.remove(&from);
            }
        }
        self.pump_handoff(ctx);
    }
}

impl<S: StateMachine> Actor for StwNode<S> {
    type Msg = RsmrMsg<S::Op, S::Output>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        ctx.set_timer(self.tun.tick, 0);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
        match msg {
            RsmrMsg::Paxos { epoch, inner } => {
                if let Some(inst) = self.instances.get_mut(&epoch) {
                    let fx = inst.paxos.on_message(from, inner, ctx.now());
                    self.process_effects(ctx, epoch, fx);
                } else if self.current == Some(epoch.prev()) || self.current.is_none() {
                    // Either not switched yet (traffic for the successor
                    // races the Activate) or a joiner pre-start: drop; the
                    // protocol's retries recover.
                    ctx.metrics().incr("stw.unroutable_paxos", 1);
                }
            }
            RsmrMsg::Request { seq, op } => self.handle_request(ctx, from, seq, op),
            RsmrMsg::Reconfigure { members } => self.handle_reconfigure(ctx, from, members),
            RsmrMsg::Activate { epoch, members } => self.handle_activate(ctx, epoch, members),
            RsmrMsg::TransferReply {
                epoch,
                base: Some(bytes),
            } => self.handle_pushed_base(ctx, from, epoch, bytes),
            RsmrMsg::TransferAck { epoch } => self.handle_ack(ctx, from, epoch),
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, _timer: Timer) {
        let now = ctx.now();
        let epochs: Vec<Epoch> = self.instances.keys().copied().collect();
        for epoch in epochs {
            let fx = {
                let Some(inst) = self.instances.get_mut(&epoch) else {
                    continue;
                };
                if let Some(at) = inst.retire_at {
                    if now >= at {
                        inst.paxos.halt();
                        self.instances.remove(&epoch);
                        continue;
                    }
                }
                inst.paxos.tick(now)
            };
            self.process_effects(ctx, epoch, fx);
        }
        self.try_finish_drain(ctx);
        self.pump_handoff(ctx);
        ctx.set_timer(self.tun.tick, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsmr_core::state_machine::CounterSm;

    #[test]
    fn genesis_node_serves_epoch_zero() {
        let cfg = StaticConfig::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        let node: StwNode<CounterSm> = StwNode::genesis(NodeId(0), cfg, StwTunables::default());
        assert_eq!(node.current_epoch(), Some(Epoch::ZERO));
        assert!(!node.is_blocked());
        assert_eq!(node.applied_count(), 0);
    }

    #[test]
    fn joining_node_has_no_epoch() {
        let node: StwNode<CounterSm> = StwNode::joining(NodeId(5), StwTunables::default());
        assert_eq!(node.current_epoch(), None);
        assert!(!node.is_blocked());
    }
}
