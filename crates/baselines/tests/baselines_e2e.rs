//! End-to-end tests for the two comparison systems, mirroring the
//! `rsmr-core` reconfiguration suite so behaviour is comparable.

use baselines::raft::{RaftAdmin, RaftClient, RaftMsg, RaftNode, RaftTunables};
use baselines::stw::{StwNode, StwTunables};
use consensus::StaticConfig;
use rsmr_core::{AdminActor, CounterSm, Epoch, RsmrClient, RsmrMsg};
use simnet::{Actor, Context, NetConfig, NodeId, Sim, SimDuration, SimTime, Timer};

// ---------------------------------------------------------------------------
// Stop-the-world world
// ---------------------------------------------------------------------------

type SMsg = RsmrMsg<u64, u64>;

#[allow(clippy::large_enum_variant)] // one value per node, stored once
enum SNode {
    Server(StwNode<CounterSm>),
    Client(RsmrClient<CounterSm>),
    Admin(AdminActor<CounterSm>),
}

impl Actor for SNode {
    type Msg = SMsg;
    fn on_start(&mut self, ctx: &mut Context<'_, SMsg>) {
        match self {
            SNode::Server(a) => a.on_start(ctx),
            SNode::Client(a) => a.on_start(ctx),
            SNode::Admin(a) => a.on_start(ctx),
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, SMsg>, from: NodeId, msg: SMsg) {
        match self {
            SNode::Server(a) => a.on_message(ctx, from, msg),
            SNode::Client(a) => a.on_message(ctx, from, msg),
            SNode::Admin(a) => a.on_message(ctx, from, msg),
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, SMsg>, timer: Timer) {
        match self {
            SNode::Server(a) => a.on_timer(ctx, timer),
            SNode::Client(a) => a.on_timer(ctx, timer),
            SNode::Admin(a) => a.on_timer(ctx, timer),
        }
    }
}

#[test]
fn stw_steady_state_serves_clients() {
    let mut sim: Sim<SNode> = Sim::new(21, NetConfig::lan());
    let servers: Vec<NodeId> = (0..3).map(NodeId).collect();
    let genesis = StaticConfig::new(servers.clone());
    for &s in &servers {
        sim.add_node_with_id(
            s,
            SNode::Server(StwNode::genesis(s, genesis.clone(), StwTunables::default())),
        );
    }
    let client = NodeId(100);
    sim.add_node_with_id(
        client,
        SNode::Client(RsmrClient::new(servers.clone(), |_| 1, Some(100))),
    );
    sim.run_for(SimDuration::from_secs(10));
    match sim.actor(client) {
        Some(SNode::Client(c)) => assert_eq!(c.completed(), 100),
        _ => unreachable!(),
    }
    for &s in &servers {
        match sim.actor(s) {
            Some(SNode::Server(n)) => assert_eq!(n.state_machine().value(), 100),
            _ => unreachable!(),
        }
    }
}

#[test]
fn stw_add_member_blocks_then_recovers() {
    let mut sim: Sim<SNode> = Sim::new(22, NetConfig::lan());
    let servers: Vec<NodeId> = (0..3).map(NodeId).collect();
    let genesis = StaticConfig::new(servers.clone());
    for &s in &servers {
        sim.add_node_with_id(
            s,
            SNode::Server(StwNode::genesis(s, genesis.clone(), StwTunables::default())),
        );
    }
    let joiner = NodeId(3);
    sim.add_node_with_id(
        joiner,
        SNode::Server(StwNode::joining(joiner, StwTunables::default())),
    );
    let client = NodeId(100);
    sim.add_node_with_id(
        client,
        SNode::Client(RsmrClient::new(servers.clone(), |_| 1, Some(500))),
    );
    sim.add_node_with_id(
        NodeId(99),
        SNode::Admin(AdminActor::new(
            servers.clone(),
            vec![(
                SimTime::from_millis(400),
                vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            )],
        )),
    );

    sim.run_for(SimDuration::from_secs(30));

    match sim.actor(NodeId(99)) {
        Some(SNode::Admin(a)) => {
            assert_eq!(a.results().len(), 1, "reconfig must complete");
            assert_eq!(a.results()[0].2, Epoch(1));
        }
        _ => unreachable!(),
    }
    match sim.actor(client) {
        Some(SNode::Client(c)) => assert_eq!(c.completed(), 500),
        _ => unreachable!(),
    }
    // The joiner is serving the new epoch with the full state.
    match sim.actor(joiner) {
        Some(SNode::Server(n)) => {
            assert_eq!(n.current_epoch(), Some(Epoch(1)));
            assert_eq!(n.state_machine().value(), 500);
        }
        _ => unreachable!(),
    }
    // The defining property of this baseline: requests bounced during the
    // blocked window.
    assert!(
        sim.metrics().counter("stw.bounced_requests") > 0
            || sim.metrics().counter("client.retransmits") > 0,
        "a stop-the-world reconfig should visibly disturb the client"
    );
}

#[test]
fn stw_full_replacement() {
    let mut sim: Sim<SNode> = Sim::new(23, NetConfig::lan());
    let servers: Vec<NodeId> = (0..3).map(NodeId).collect();
    let genesis = StaticConfig::new(servers.clone());
    for &s in &servers {
        sim.add_node_with_id(
            s,
            SNode::Server(StwNode::genesis(s, genesis.clone(), StwTunables::default())),
        );
    }
    for id in [3u64, 4, 5] {
        sim.add_node_with_id(
            NodeId(id),
            SNode::Server(StwNode::joining(NodeId(id), StwTunables::default())),
        );
    }
    let client = NodeId(100);
    sim.add_node_with_id(
        client,
        SNode::Client(RsmrClient::new(servers.clone(), |_| 1, Some(400))),
    );
    sim.add_node_with_id(
        NodeId(99),
        SNode::Admin(AdminActor::new(
            servers.clone(),
            vec![(
                SimTime::from_millis(400),
                vec![NodeId(3), NodeId(4), NodeId(5)],
            )],
        )),
    );
    sim.run_for(SimDuration::from_secs(40));
    match sim.actor(client) {
        Some(SNode::Client(c)) => assert_eq!(c.completed(), 400),
        _ => unreachable!(),
    }
    for id in [3u64, 4, 5] {
        match sim.actor(NodeId(id)) {
            Some(SNode::Server(n)) => {
                assert_eq!(n.current_epoch(), Some(Epoch(1)), "n{id}");
                assert_eq!(n.state_machine().value(), 400, "n{id}");
            }
            _ => unreachable!(),
        }
    }
}

// ---------------------------------------------------------------------------
// Raft world
// ---------------------------------------------------------------------------

type RMsg = RaftMsg<u64, u64>;

#[allow(clippy::large_enum_variant)] // one value per node, stored once
enum RNode {
    Server(RaftNode<CounterSm>),
    Client(RaftClient<CounterSm>),
    Admin(RaftAdmin<CounterSm>),
}

impl Actor for RNode {
    type Msg = RMsg;
    fn on_start(&mut self, ctx: &mut Context<'_, RMsg>) {
        match self {
            RNode::Server(a) => a.on_start(ctx),
            RNode::Client(a) => a.on_start(ctx),
            RNode::Admin(a) => a.on_start(ctx),
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, RMsg>, from: NodeId, msg: RMsg) {
        match self {
            RNode::Server(a) => a.on_message(ctx, from, msg),
            RNode::Client(a) => a.on_message(ctx, from, msg),
            RNode::Admin(a) => a.on_message(ctx, from, msg),
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, RMsg>, timer: Timer) {
        match self {
            RNode::Server(a) => a.on_timer(ctx, timer),
            RNode::Client(a) => a.on_timer(ctx, timer),
            RNode::Admin(a) => a.on_timer(ctx, timer),
        }
    }
}

fn raft_world(seed: u64, n: u64) -> (Sim<RNode>, Vec<NodeId>) {
    let mut sim: Sim<RNode> = Sim::new(seed, NetConfig::lan());
    let servers: Vec<NodeId> = (0..n).map(NodeId).collect();
    let genesis = StaticConfig::new(servers.clone());
    for &s in &servers {
        sim.add_node_with_id(
            s,
            RNode::Server(RaftNode::new(s, genesis.clone(), RaftTunables::default())),
        );
    }
    (sim, servers)
}

#[test]
fn raft_steady_state_serves_clients() {
    let (mut sim, servers) = raft_world(31, 3);
    let client = NodeId(100);
    sim.add_node_with_id(
        client,
        RNode::Client(RaftClient::new(servers.clone(), |_| 1, Some(100))),
    );
    sim.run_for(SimDuration::from_secs(10));
    match sim.actor(client) {
        Some(RNode::Client(c)) => assert_eq!(c.completed(), 100),
        _ => unreachable!(),
    }
    for &s in &servers {
        match sim.actor(s) {
            Some(RNode::Server(n)) => assert_eq!(n.state_machine().value(), 100, "{s}"),
            _ => unreachable!(),
        }
    }
}

#[test]
fn raft_leader_crash_failover() {
    let (mut sim, servers) = raft_world(32, 3);
    let client = NodeId(100);
    sim.add_node_with_id(
        client,
        RNode::Client(RaftClient::new(servers.clone(), |_| 1, Some(1500))),
    );
    sim.run_for(SimDuration::from_millis(400));
    let leader = servers
        .iter()
        .copied()
        .find(|&s| match sim.actor(s) {
            Some(RNode::Server(n)) => n.core().is_leader(),
            _ => false,
        })
        .expect("leader exists");
    sim.crash(leader);
    sim.run_for(SimDuration::from_secs(30));
    match sim.actor(client) {
        Some(RNode::Client(c)) => assert_eq!(c.completed(), 1500),
        _ => unreachable!(),
    }
}

#[test]
fn raft_membership_change_under_load() {
    let (mut sim, servers) = raft_world(33, 3);
    let joiner = NodeId(3);
    sim.add_node_with_id(
        joiner,
        RNode::Server(RaftNode::joining(joiner, RaftTunables::default())),
    );
    let client = NodeId(100);
    sim.add_node_with_id(
        client,
        RNode::Client(RaftClient::new(servers.clone(), |_| 1, Some(600))),
    );
    sim.add_node_with_id(
        NodeId(99),
        RNode::Admin(RaftAdmin::new(
            servers.clone(),
            vec![(
                SimTime::from_millis(400),
                vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            )],
        )),
    );
    sim.run_for(SimDuration::from_secs(30));
    match sim.actor(NodeId(99)) {
        Some(RNode::Admin(a)) => assert_eq!(a.results().len(), 1, "change must complete"),
        _ => unreachable!(),
    }
    match sim.actor(client) {
        Some(RNode::Client(c)) => assert_eq!(c.completed(), 600),
        _ => unreachable!(),
    }
    match sim.actor(joiner) {
        Some(RNode::Server(n)) => {
            assert!(n.core().current_members().contains(&joiner));
            assert_eq!(n.state_machine().value(), 600, "joiner must converge");
        }
        _ => unreachable!(),
    }
}

#[test]
fn raft_full_replacement_via_single_steps() {
    let (mut sim, servers) = raft_world(34, 3);
    for id in [3u64, 4, 5] {
        sim.add_node_with_id(
            NodeId(id),
            RNode::Server(RaftNode::joining(NodeId(id), RaftTunables::default())),
        );
    }
    let client = NodeId(100);
    sim.add_node_with_id(
        client,
        RNode::Client(RaftClient::new(servers.clone(), |_| 1, Some(800))),
    );
    sim.add_node_with_id(
        NodeId(99),
        RNode::Admin(RaftAdmin::new(
            servers.clone(),
            vec![(
                SimTime::from_millis(400),
                vec![NodeId(3), NodeId(4), NodeId(5)],
            )],
        )),
    );
    sim.run_for(SimDuration::from_secs(60));
    match sim.actor(NodeId(99)) {
        Some(RNode::Admin(a)) => assert!(a.is_done(), "six single steps must all land"),
        _ => unreachable!(),
    }
    match sim.actor(client) {
        Some(RNode::Client(c)) => assert_eq!(c.completed(), 800),
        _ => unreachable!(),
    }
    for id in [3u64, 4, 5] {
        match sim.actor(NodeId(id)) {
            Some(RNode::Server(n)) => {
                assert_eq!(n.state_machine().value(), 800, "n{id} diverged")
            }
            _ => unreachable!(),
        }
    }
}
